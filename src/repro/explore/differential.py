"""Differential execution: every applicable engine/mode pair per scenario.

For one :class:`ScenarioCase` the runner builds a session (trace
replayed), runs a configurable set of *probes* — engine/mode pairs —
under a per-probe budget, and cross-checks:

* **repair lists, order included** — the direct family (incremental /
  naive / indexed / parallel) documents bit-identical output, so raw
  list order is part of the contract and any mismatch is a
  ``repair-order`` divergence; across families (direct vs the
  stable-model program route) only canonical set-of-repairs equality is
  required, and a mismatch is a ``repairs`` divergence — the class the
  open ≤_D null-coverage bug falls into;
* **consistent answers** — every probe that completed must agree with
  the reference (``answers`` divergence otherwise);
* **certain-answer decisions** — ``session.certain(query, candidate)``
  must agree with membership in the reference answer set (``certain``);
* **degradation flags** — a probe that silently degraded while the
  reference ran exact is a ``degradation`` divergence.

Probes that raise the typed budget taxonomy are classified ``budget``;
probes outside their fragment (``RewritingUnsupportedError``,
``QueryNotIndependentError``) are ``skip``; anything else raising is a
``crash`` divergence in its own right.  Divergences carry a coarse
*signature* (kind + engine families) so a fresh finding can be matched
against the pinned corpus without comparing instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.independence import QueryNotIndependentError
from repro.core.repair_program import RepairProgramError
from repro.errors import BudgetExceededError
from repro.rewriting.fragment import RewritingUnsupportedError
from repro.engines.base import CQAConfig
from repro.relational.instance import DatabaseInstance
from repro.workloads.case import ScenarioCase

#: Canonical form of one repair: the sorted fact keys it contains.
RepairKey = Tuple[Tuple[Any, ...], ...]


@dataclass(frozen=True)
class ProbeSpec:
    """One engine/mode pair the runner exercises."""

    name: str
    method: str
    repair_mode: Optional[str] = None
    workers: Optional[int] = None
    #: True when the probe enumerates repairs (so repair lists compare).
    enumerates: bool = False

    @property
    def family(self) -> str:
        """The engine family (probe name without the mode suffix)."""

        return self.name.split(":", 1)[0]

    def overrides(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {"method": self.method}
        if self.repair_mode is not None:
            merged["repair_mode"] = self.repair_mode
        if self.workers is not None:
            merged["workers"] = self.workers
        return merged


#: The reference probe — the repository's reference implementation of
#: Definition 7, warm-tracker incremental mode.
REFERENCE_PROBE = ProbeSpec("direct:incremental", "direct", "incremental", enumerates=True)

ALL_PROBES: Tuple[ProbeSpec, ...] = (
    REFERENCE_PROBE,
    ProbeSpec("direct:naive", "direct", "naive", enumerates=True),
    ProbeSpec("direct:indexed", "direct", "indexed", enumerates=True),
    ProbeSpec("direct:parallel", "direct", "parallel", workers=2, enumerates=True),
    ProbeSpec("program", "program", enumerates=True),
    ProbeSpec("rewriting", "rewriting"),
    ProbeSpec("auto", "auto"),
    ProbeSpec("sqlite", "sqlite"),
    ProbeSpec("independent", "independent"),
)

#: The default probe set skips ``direct:parallel``: a process pool per
#: scenario would dominate the smoke budget.  ``--engines all`` (or an
#: explicit list) brings it back.
DEFAULT_PROBES: Tuple[ProbeSpec, ...] = tuple(
    spec for spec in ALL_PROBES if spec.name != "direct:parallel"
)


def probe_specs(names: Optional[Sequence[str]]) -> Tuple[ProbeSpec, ...]:
    """Resolve a probe selection; the reference probe is always included."""

    if names is None:
        return DEFAULT_PROBES
    if list(names) == ["all"]:
        return ALL_PROBES
    by_name = {spec.name: spec for spec in ALL_PROBES}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ValueError(
            f"unknown probes {unknown}; available: {sorted(by_name)} or 'all'"
        )
    selected = [REFERENCE_PROBE]
    selected += [by_name[name] for name in names if name != REFERENCE_PROBE.name]
    return tuple(selected)


@dataclass
class ProbeResult:
    """What one probe did on one scenario."""

    probe: str
    status: str  # "ok" | "skip" | "budget" | "crash"
    answers: Optional[FrozenSet[Tuple[Any, ...]]] = None
    #: Repairs in engine emission order (None for answer-only probes).
    repairs_raw: Optional[Tuple[RepairKey, ...]] = None
    #: The same repairs sorted — the cross-family comparison key.
    repairs_canonical: Optional[Tuple[RepairKey, ...]] = None
    degraded: bool = False
    error: str = ""


@dataclass(frozen=True)
class Divergence:
    """Two probes (or a probe and the certain() surface) disagreeing."""

    kind: str  # "repairs" | "repair-order" | "answers" | "certain" | "degradation" | "crash"
    left: str
    right: str
    detail: str = ""

    @property
    def signature(self) -> str:
        """Coarse matching key: kind plus the disagreeing engine families.

        Deliberately name- and instance-independent: any direct-vs-program
        repair-set disagreement shares one signature, so the single known
        ≤_D divergence pins the whole class (see ``docs/fuzzing.md``).
        """

        families = sorted(
            {self.left.split(":", 1)[0], self.right.split(":", 1)[0]} - {""}
        )
        return f"{self.kind}:" + "/".join(families)


@dataclass
class CaseOutcome:
    """The differential verdict on one scenario."""

    case: ScenarioCase
    status: str  # "agree" | "diverged" | "budget" | "skip" | "crash"
    results: List[ProbeResult] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def signatures(self) -> List[str]:
        return sorted({d.signature for d in self.divergences})


def repair_key(repair: DatabaseInstance) -> RepairKey:
    """The canonical, orderable key of one repair instance."""

    return tuple(sorted(fact.sort_key() for fact in repair.facts()))


def _budget_config(spec: ProbeSpec, budget: CQAConfig) -> Dict[str, Any]:
    merged = spec.overrides()
    merged["max_states"] = budget.max_states
    if budget.deadline is not None:
        merged["deadline"] = budget.deadline
    return merged


#: Default per-probe resource bounds: enough for every generated scenario
#: we expect to finish, small enough that a pathological one is cut off
#: as ``budget`` instead of stalling the sweep.
DEFAULT_PROBE_BUDGET = CQAConfig(max_states=4000, deadline=5.0)


def run_probe(session: Any, case: ScenarioCase, spec: ProbeSpec, budget: CQAConfig) -> ProbeResult:
    """Execute one probe on an already-built session."""

    overrides = _budget_config(spec, budget)
    result = ProbeResult(probe=spec.name, status="ok")
    try:
        if spec.enumerates:
            config = session.config.merged(overrides)
            repairs = session.repairs_list(spec.method, config)
            result.repairs_raw = tuple(repair_key(r) for r in repairs)
            result.repairs_canonical = tuple(sorted(result.repairs_raw))
        report = session.report(case.query, **overrides)
        result.answers = frozenset(report.answers)
        result.degraded = bool(getattr(report, "degradation", None)) or bool(
            session.last_degradation
        )
    except BudgetExceededError as exc:
        result.status = "budget"
        result.error = f"{type(exc).__name__}: {exc}"
    except (
        RewritingUnsupportedError,  # outside the tractable rewriting fragment
        QueryNotIndependentError,  # query touches constrained predicates (I302)
        RepairProgramError,  # constraint outside Definition 9's program fragment
    ) as exc:
        result.status = "skip"
        result.error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # a crash IS a finding, not a runner failure
        result.status = "crash"
        result.error = f"{type(exc).__name__}: {exc}"
    return result


def _certain_checks(
    session: Any, case: ScenarioCase, reference: ProbeResult, budget: CQAConfig
) -> List[Divergence]:
    """Cross-check ``session.certain`` against the reference answer set.

    Two candidates are decided: one tuple that IS a consistent answer
    (certain must say True) and one tuple answered on the *current*
    instance but not consistently (certain must say False).  Boolean
    queries check the single () candidate implicitly.
    """

    assert reference.answers is not None
    divergences: List[Divergence] = []
    overrides = _budget_config(REFERENCE_PROBE, budget)
    candidates: List[Tuple[Tuple[Any, ...], bool]] = []
    if case.query.is_boolean:
        candidates.append(((), () in reference.answers))
    else:
        if reference.answers:
            candidates.append((sorted(reference.answers)[0], True))
        try:
            plain = case.query.answers(session.instance)
        except Exception:
            plain = frozenset()
        spurious = sorted(plain - reference.answers)
        if spurious:
            candidates.append((spurious[0], False))
    for candidate, expected in candidates:
        try:
            if case.query.is_boolean:
                decided = session.certain(case.query, **overrides)
            else:
                decided = session.certain(case.query, candidate, **overrides)
        except BudgetExceededError:
            continue
        except Exception as exc:
            divergences.append(
                Divergence(
                    kind="crash",
                    left="certain",
                    right=REFERENCE_PROBE.name,
                    detail=f"certain({candidate!r}) raised {type(exc).__name__}: {exc}",
                )
            )
            continue
        if bool(decided) != expected:
            divergences.append(
                Divergence(
                    kind="certain",
                    left="certain",
                    right=REFERENCE_PROBE.name,
                    detail=(
                        f"certain({candidate!r}) = {decided!r} but the reference "
                        f"answer set says {expected}"
                    ),
                )
            )
    return divergences


def run_case(
    case: ScenarioCase,
    probes: Sequence[ProbeSpec] = DEFAULT_PROBES,
    budget: CQAConfig = DEFAULT_PROBE_BUDGET,
    *,
    check_certain: bool = True,
) -> CaseOutcome:
    """Run every probe on *case* and cross-check the results."""

    try:
        session = case.session()
    except Exception as exc:
        outcome = CaseOutcome(case=case, status="crash")
        outcome.divergences.append(
            Divergence(
                kind="crash",
                left="session",
                right="",
                detail=f"session construction raised {type(exc).__name__}: {exc}",
            )
        )
        return outcome

    results = [run_probe(session, case, spec, budget) for spec in probes]
    outcome = CaseOutcome(case=case, status="agree", results=results)
    by_status: Dict[str, List[ProbeResult]] = {}
    for result in results:
        by_status.setdefault(result.status, []).append(result)
    for crashed in by_status.get("crash", ()):
        outcome.divergences.append(
            Divergence(
                kind="crash", left=crashed.probe, right="", detail=crashed.error
            )
        )

    completed = by_status.get("ok", [])
    if len(completed) >= 1:
        base = completed[0]
        for other in completed[1:]:
            assert base.answers is not None and other.answers is not None
            if other.answers != base.answers:
                outcome.divergences.append(
                    Divergence(
                        kind="answers",
                        left=base.probe,
                        right=other.probe,
                        detail=(
                            f"answer sets differ: {sorted(base.answers)!r} vs "
                            f"{sorted(other.answers)!r}"
                        ),
                    )
                )
            if base.repairs_canonical is not None and other.repairs_canonical is not None:
                base_spec = next(s for s in probes if s.name == base.probe)
                other_spec = next(s for s in probes if s.name == other.probe)
                if base_spec.family == other_spec.family:
                    if base.repairs_raw != other.repairs_raw:
                        outcome.divergences.append(
                            Divergence(
                                kind="repair-order",
                                left=base.probe,
                                right=other.probe,
                                detail=(
                                    "same-family repair lists are not "
                                    "bit-identical (order or content differs): "
                                    f"{len(base.repairs_raw or ())} vs "
                                    f"{len(other.repairs_raw or ())} repairs"
                                ),
                            )
                        )
                elif base.repairs_canonical != other.repairs_canonical:
                    outcome.divergences.append(
                        Divergence(
                            kind="repairs",
                            left=base.probe,
                            right=other.probe,
                            detail=(
                                f"repair sets differ: {len(base.repairs_canonical)} "
                                f"vs {len(other.repairs_canonical)} repairs"
                            ),
                        )
                    )
            if other.degraded and not base.degraded:
                outcome.divergences.append(
                    Divergence(
                        kind="degradation",
                        left=base.probe,
                        right=other.probe,
                        detail="probe degraded while the reference ran exact",
                    )
                )
        if check_certain and base.probe == REFERENCE_PROBE.name and base.answers is not None:
            outcome.divergences.extend(_certain_checks(session, case, base, budget))

    if outcome.divergences:
        outcome.status = "diverged"
    elif not completed:
        if by_status.get("budget"):
            outcome.status = "budget"
        else:
            outcome.status = "skip"
    return outcome
