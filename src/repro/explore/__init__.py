"""Generative scenario explorer: differential engine fuzzing at scale.

The layers, bottom up:

* :mod:`repro.explore.registry` — pluggable scenario-source registry
  with auto-discovery over :mod:`repro.explore.sources` (paper
  examples, parametric workloads, the seeded random generator, the
  pinned corpus);
* :mod:`repro.explore.differential` — run every applicable engine/mode
  pair on one scenario under a budget and classify agreement,
  divergence (typed + signed), budget exhaustion and crashes;
* :mod:`repro.explore.shrink` — ddmin-style reduction of a diverging
  scenario to a 1-minimal witness;
* :mod:`repro.explore.serialize` — canonical witness JSON, the format
  ``tests/corpus/`` pins forever;
* :mod:`repro.explore.explorer` — the campaign loop gluing it all
  together, exposed as ``python -m repro.explore``.
"""

from repro.explore.differential import (
    ALL_PROBES,
    DEFAULT_PROBES,
    DEFAULT_PROBE_BUDGET,
    CaseOutcome,
    Divergence,
    ProbeResult,
    ProbeSpec,
    probe_specs,
    run_case,
    run_probe,
)
from repro.explore.explorer import (
    DEFAULT_SOURCES,
    DivergenceReport,
    ExploreReport,
    explore,
)
from repro.explore.registry import (
    ScenarioSource,
    UnknownSourceError,
    available_sources,
    child_seed,
    discover_sources,
    get_source,
    iter_scenarios,
    register_source,
)
from repro.explore.serialize import (
    DivergenceRecord,
    WitnessFormatError,
    case_to_document,
    document_to_case,
    divergence_of,
    dumps,
    loads,
    pinned_signatures_of,
)
from repro.explore.shrink import ShrinkResult, shrink

__all__ = [
    "ALL_PROBES",
    "DEFAULT_PROBES",
    "DEFAULT_PROBE_BUDGET",
    "DEFAULT_SOURCES",
    "CaseOutcome",
    "Divergence",
    "DivergenceRecord",
    "DivergenceReport",
    "ExploreReport",
    "ProbeResult",
    "ProbeSpec",
    "ScenarioSource",
    "ShrinkResult",
    "UnknownSourceError",
    "WitnessFormatError",
    "available_sources",
    "case_to_document",
    "child_seed",
    "discover_sources",
    "divergence_of",
    "document_to_case",
    "dumps",
    "explore",
    "get_source",
    "iter_scenarios",
    "loads",
    "pinned_signatures_of",
    "probe_specs",
    "register_source",
    "run_case",
    "run_probe",
    "shrink",
]
