"""Pluggable scenario-source registry with auto-discovery.

Mirrors the engine registry of :mod:`repro.engines.base`: a source
registers itself under a stable name with :func:`register_source`, and
:func:`discover_sources` imports every module under
:mod:`repro.explore.sources` so that dropping a new source file into
that package is all it takes to make its scenarios explorable —
``python -m repro.explore --sources mine`` picks it up with no central
edit.

A source is a callable ``(seed, count) -> Iterable[ScenarioCase]``.
Finite sources (the paper's worked examples, the pinned corpus) simply
ignore *seed* and yield what they have, at most *count* cases; generative
sources derive one child seed per case so that a run is reproducible from
the root seed alone.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.workloads.case import ScenarioCase

SourceFactory = Callable[[int, int], Iterable[ScenarioCase]]


@dataclass(frozen=True)
class ScenarioSource:
    """A named provider of scenarios."""

    name: str
    factory: SourceFactory
    description: str = ""


class UnknownSourceError(KeyError):
    """Raised when a requested scenario source is not registered."""


_SOURCES: Dict[str, ScenarioSource] = {}
_DISCOVERED = False


def register_source(
    name: str, description: str = ""
) -> Callable[[SourceFactory], SourceFactory]:
    """Class/function decorator registering a scenario source.

    Re-registering a name replaces the previous entry (same convention as
    the engine registry — last writer wins, which keeps reloads in tests
    harmless).
    """

    def decorate(factory: SourceFactory) -> SourceFactory:
        _SOURCES[name] = ScenarioSource(name=name, factory=factory, description=description)
        return factory

    return decorate


def discover_sources() -> None:
    """Import every module in :mod:`repro.explore.sources` exactly once."""

    global _DISCOVERED
    if _DISCOVERED:
        return
    from repro.explore import sources as sources_pkg

    for module_info in sorted(
        pkgutil.iter_modules(sources_pkg.__path__), key=lambda m: m.name
    ):
        importlib.import_module(f"{sources_pkg.__name__}.{module_info.name}")
    _DISCOVERED = True


def get_source(name: str) -> ScenarioSource:
    """The registered source called *name* (after discovery)."""

    discover_sources()
    try:
        return _SOURCES[name]
    except KeyError:
        raise UnknownSourceError(
            f"unknown scenario source {name!r}; available: {available_sources()}"
        ) from None


def available_sources() -> List[str]:
    """Sorted names of all registered sources."""

    discover_sources()
    return sorted(_SOURCES)


def child_seed(seed: int, index: int) -> int:
    """The derived seed of case *index* within a run seeded with *seed*.

    A fixed affine map — deliberately not ``hash()``-based, so the same
    root seed enumerates the same cases in every process regardless of
    ``PYTHONHASHSEED``.
    """

    return seed * 1_000_003 + index


def iter_scenarios(
    names: Sequence[str], seed: int, count: int
) -> Iterator[ScenarioCase]:
    """Interleaved scenarios from *names*, at most *count* in total.

    Sources are drained round-robin, so a small run still samples every
    requested source; finite sources (paper examples, corpus) drop out as
    they exhaust and the remaining budget flows to the generative ones.
    """

    iterators = [iter(get_source(name).factory(seed, count)) for name in names]
    emitted = 0
    while iterators and emitted < count:
        next_round: List[Iterator[ScenarioCase]] = []
        for iterator in iterators:
            if emitted >= count:
                break
            try:
                yield next(iterator)
            except StopIteration:
                continue
            emitted += 1
            next_round.append(iterator)
        iterators = next_round
