"""The explorer loop: generate → differentially check → shrink → pin.

One :func:`explore` call is the whole campaign CI and humans share:
draw scenarios from the requested sources until the wall-clock budget
or the scenario cap runs out, run the differential check on each, and
for any divergence whose signature is *not* pinned in the corpus,
shrink it to a minimal witness and serialize the witness into the
output directory.  The returned :class:`ExploreReport` says — in one
JSON-able object — what ran, what agreed, what diverged, and whether
any of it was news.

The run is reproducible from ``(seed, scenario count)``: sources derive
child seeds deterministically, so re-running with the same seed and an
equal-or-larger budget revisits the same cases in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engines.base import CQAConfig
from repro.obs import clock
from repro.obs import metrics as _metrics
from repro.explore.differential import (
    DEFAULT_PROBE_BUDGET,
    CaseOutcome,
    ProbeSpec,
    probe_specs,
    run_case,
)
from repro.explore.registry import available_sources, iter_scenarios
from repro.explore.serialize import (
    DivergenceRecord,
    case_to_document,
    dumps,
)
from repro.explore.shrink import shrink
from repro.explore.sources.corpus import pinned_signatures

#: Sources a bare ``python -m repro.explore`` draws from.
DEFAULT_SOURCES: Tuple[str, ...] = ("corpus", "paper", "workloads", "generated")

#: Process-wide campaign counters (``MetricsRegistry.reset()`` zeroes the
#: cached objects in place, so they never go stale).
_SCENARIOS_RUN = _metrics.counter(
    "repro_explore_scenarios_total", "scenarios the differential runner checked"
)
_DIVERGENCES_FOUND = _metrics.counter(
    "repro_explore_divergences_total", "diverging scenarios found (pinned or new)"
)
_WITNESSES_SHRUNK = _metrics.counter(
    "repro_explore_witnesses_shrunk_total", "new divergences reduced to witnesses"
)


@dataclass
class DivergenceReport:
    """One diverging scenario, as reported to humans/CI."""

    case_name: str
    source: str
    seed: Optional[int]
    signatures: List[str]
    pinned: bool
    details: List[str]
    witness_path: Optional[str] = None


@dataclass
class ExploreReport:
    """The outcome of one explorer campaign."""

    seed: int
    sources: List[str]
    probes: List[str]
    scenarios_run: int = 0
    agreed: int = 0
    skipped: int = 0
    budget_exceeded: int = 0
    divergences: List[DivergenceReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    min_scenarios: int = 0

    @property
    def new_divergences(self) -> List[DivergenceReport]:
        return [d for d in self.divergences if not d.pinned]

    @property
    def known_divergences(self) -> List[DivergenceReport]:
        return [d for d in self.divergences if d.pinned]

    @property
    def ok(self) -> bool:
        """True iff the run is green: no news, and the floor was met."""

        return not self.new_divergences and self.scenarios_run >= self.min_scenarios

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "sources": self.sources,
            "probes": self.probes,
            "scenarios_run": self.scenarios_run,
            "agreed": self.agreed,
            "skipped": self.skipped,
            "budget_exceeded": self.budget_exceeded,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "min_scenarios": self.min_scenarios,
            "ok": self.ok,
            "known_divergences": [vars(d) for d in self.known_divergences],
            "new_divergences": [vars(d) for d in self.new_divergences],
        }


def _witness_filename(report: DivergenceReport) -> str:
    slug = report.case_name.replace("/", "-")
    return f"witness-{slug}.json"


def explore(
    seed: int = 0,
    *,
    budget_seconds: float = 60.0,
    max_scenarios: int = 10_000,
    min_scenarios: int = 0,
    sources: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    probe_budget: CQAConfig = DEFAULT_PROBE_BUDGET,
    shrink_new: bool = True,
    out_dir: Optional[Path] = None,
    corpus_directory: Optional[Path] = None,
) -> ExploreReport:
    """Run one differential-fuzzing campaign.

    Args:
        seed: root seed; child seeds derive deterministically.
        budget_seconds: wall-clock budget for the whole campaign
            (checked between scenarios; the probe budget bounds each
            scenario so one case cannot blow through the wall).
        max_scenarios: hard cap on scenarios regardless of time left.
        min_scenarios: floor below which the run reports ``ok=False``
            even with no divergence — keeps a CI smoke budget honest.
        sources: scenario source names (default: corpus, paper,
            workloads, generated).
        engines: probe names for :func:`probe_specs` (default set, or
            ``["all"]``).
        probe_budget: per-probe ``max_states`` / ``deadline`` bounds.
        shrink_new: reduce every *new* divergence to a minimal witness.
        out_dir: where to write shrunk witness files (created on
            demand; nothing is written when no new divergence shows).
        corpus_directory: override the pinned-corpus location (tests).
    """

    started = clock.now()
    source_names = list(sources) if sources is not None else list(DEFAULT_SOURCES)
    unknown = [name for name in source_names if name not in available_sources()]
    if unknown:
        raise ValueError(
            f"unknown sources {unknown}; available: {available_sources()}"
        )
    probes: Tuple[ProbeSpec, ...] = probe_specs(engines)
    pinned = pinned_signatures(corpus_directory)
    report = ExploreReport(
        seed=seed,
        sources=source_names,
        probes=[spec.name for spec in probes],
        min_scenarios=min_scenarios,
    )

    for case in iter_scenarios(source_names, seed, max_scenarios):
        if clock.now() - started >= budget_seconds:
            break
        outcome = run_case(case, probes, probe_budget)
        report.scenarios_run += 1
        _SCENARIOS_RUN.inc()
        if outcome.status == "agree":
            report.agreed += 1
            continue
        if outcome.status == "budget":
            report.budget_exceeded += 1
            continue
        if outcome.status == "skip":
            report.skipped += 1
            continue
        signatures = outcome.signatures
        divergence = DivergenceReport(
            case_name=case.name,
            source=case.source,
            seed=case.seed,
            signatures=signatures,
            pinned=all(signature in pinned for signature in signatures),
            details=[
                f"{d.kind}: {d.left} vs {d.right}: {d.detail}"
                for d in outcome.divergences
            ],
        )
        report.divergences.append(divergence)
        _DIVERGENCES_FOUND.inc()
        if divergence.pinned or not shrink_new:
            continue
        target = next(s for s in signatures if s not in pinned)
        shrunk = shrink(case, target, probes, probe_budget)
        _WITNESSES_SHRUNK.inc()
        primary = next(
            (d for d in shrunk.outcome.divergences if d.signature == target),
            None,
        )
        record = DivergenceRecord(
            kind=primary.kind if primary else target.split(":", 1)[0],
            left=primary.left if primary else "",
            right=primary.right if primary else "",
            signature=target,
            detail=primary.detail if primary else "",
        )
        document = case_to_document(
            shrunk.case,
            status="open",
            divergence=record,
            signatures=shrunk.outcome.signatures,
        )
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / _witness_filename(divergence)
            path.write_text(dumps(document))
            divergence.witness_path = str(path)

    report.elapsed_seconds = clock.now() - started
    return report
