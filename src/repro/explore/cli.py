"""``python -m repro.explore`` — the explorer's command-line face.

CI and humans run the same loop::

    python -m repro.explore --seed 0 --budget-seconds 60 --min-scenarios 500

Exit codes: ``0`` green (every divergence pinned, floor met), ``1`` a
non-pinned divergence was found or the scenario floor was missed, ``2``
usage error (argparse).  ``--format json`` emits the full machine-
readable report for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.engines.base import CQAConfig
from repro.explore.differential import ALL_PROBES, DEFAULT_PROBE_BUDGET
from repro.explore.explorer import DEFAULT_SOURCES, ExploreReport, explore
from repro.explore.registry import available_sources


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Differential engine fuzzing with witness shrinking.",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=60.0,
        help="wall-clock budget for the campaign (default 60)",
    )
    parser.add_argument(
        "--max-scenarios",
        type=int,
        default=10_000,
        help="hard scenario cap regardless of time left (default 10000)",
    )
    parser.add_argument(
        "--min-scenarios",
        type=int,
        default=0,
        help="fail (exit 1) when fewer scenarios fit the budget (default 0)",
    )
    parser.add_argument(
        "--sources",
        default=",".join(DEFAULT_SOURCES),
        help=(
            "comma-separated scenario sources "
            f"(default {','.join(DEFAULT_SOURCES)}; available: "
            f"{','.join(available_sources())})"
        ),
    )
    parser.add_argument(
        "--engines",
        default=None,
        help=(
            "comma-separated probe selection, or 'all' "
            f"(default: all but direct:parallel; available: "
            f"{','.join(spec.name for spec in ALL_PROBES)})"
        ),
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=DEFAULT_PROBE_BUDGET.max_states,
        help="per-probe repair-search state budget",
    )
    parser.add_argument(
        "--probe-deadline",
        type=float,
        default=DEFAULT_PROBE_BUDGET.deadline,
        help="per-probe wall-clock deadline in seconds",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report new divergences without reducing them to witnesses",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("explore-out"),
        help="directory for shrunk witnesses (default ./explore-out)",
    )
    parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="override the pinned-corpus directory (default tests/corpus)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    return parser


def _render_text(report: ExploreReport) -> str:
    lines = [
        f"explored {report.scenarios_run} scenarios "
        f"(seed {report.seed}, {report.elapsed_seconds:.1f}s, "
        f"sources {', '.join(report.sources)})",
        f"  agreed: {report.agreed}  skipped: {report.skipped}  "
        f"budget-exceeded: {report.budget_exceeded}  "
        f"diverged: {len(report.divergences)}",
    ]
    known_by_signature: dict = {}
    for divergence in report.known_divergences:
        for signature in divergence.signatures:
            known_by_signature.setdefault(signature, []).append(divergence.case_name)
    for signature in sorted(known_by_signature):
        cases = known_by_signature[signature]
        shown = ", ".join(cases[:3]) + (", …" if len(cases) > 3 else "")
        lines.append(f"  known  {signature}: {len(cases)} case(s) ({shown})")
    for divergence in report.new_divergences:
        lines.append(
            f"  NEW    {divergence.case_name}: {', '.join(divergence.signatures)}"
        )
        for detail in divergence.details:
            lines.append(f"         {detail}")
        if divergence.witness_path:
            lines.append(f"         witness: {divergence.witness_path}")
    if report.min_scenarios and report.scenarios_run < report.min_scenarios:
        lines.append(
            f"  FLOOR MISSED: {report.scenarios_run} < {report.min_scenarios} scenarios"
        )
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    sources = [name for name in arguments.sources.split(",") if name]
    engines: Optional[List[str]] = None
    if arguments.engines:
        engines = [name for name in arguments.engines.split(",") if name]
    probe_budget = CQAConfig(
        max_states=arguments.max_states, deadline=arguments.probe_deadline
    )
    try:
        report = explore(
            arguments.seed,
            budget_seconds=arguments.budget_seconds,
            max_scenarios=arguments.max_scenarios,
            min_scenarios=arguments.min_scenarios,
            sources=sources,
            engines=engines,
            probe_budget=probe_budget,
            shrink_new=not arguments.no_shrink,
            out_dir=arguments.out,
            corpus_directory=arguments.corpus,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if arguments.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
