"""Witness shrinking: reduce a diverging scenario to a minimal core.

Greedy ddmin-style reduction: repeatedly try to remove one component —
a trace step, a fact, a constraint, a query comparison/negated atom/
positive atom — re-running the differential check after each candidate
removal and keeping the removal iff the *target signature* still
reproduces.  Passes repeat until a whole sweep removes nothing (a
fixpoint), so the result is 1-minimal: removing any single remaining
component makes the divergence disappear.

Everything iterates in deterministic order (facts by sort key,
constraints by their rendered text), so the same diverging scenario
always shrinks to the same witness — the byte-identical corpus
guarantee builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.constraints.ic import ConstraintSet
from repro.constraints.parser import render_constraint
from repro.engines.base import CQAConfig
from repro.logic.evaluation import EvaluationError
from repro.logic.queries import ConjunctiveQuery
from repro.relational.instance import DatabaseInstance
from repro.explore.differential import (
    DEFAULT_PROBE_BUDGET,
    DEFAULT_PROBES,
    CaseOutcome,
    ProbeSpec,
    run_case,
)
from repro.workloads.case import ScenarioCase


@dataclass
class ShrinkResult:
    """The reduced witness plus how the reduction went."""

    case: ScenarioCase
    outcome: CaseOutcome
    evaluations: int
    removed: int


def _rebuild_instance(template: DatabaseInstance, facts: Sequence) -> DatabaseInstance:
    instance = DatabaseInstance(schema=template.schema.copy())
    for fact in facts:
        instance.add(fact)
    return instance


class _Shrinker:
    def __init__(
        self,
        signature: str,
        probes: Sequence[ProbeSpec],
        budget: CQAConfig,
        max_evaluations: int,
    ):
        self.signature = signature
        self.probes = probes
        self.budget = budget
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.last_outcome: Optional[CaseOutcome] = None

    def interesting(self, case: ScenarioCase) -> bool:
        if self.evaluations >= self.max_evaluations:
            return False
        self.evaluations += 1
        outcome = run_case(
            case, self.probes, self.budget, check_certain=False
        )
        if self.signature in outcome.signatures:
            self.last_outcome = outcome
            return True
        return False

    # ------------------------------------------------------------ passes
    def drop_trace(self, case: ScenarioCase) -> ScenarioCase:
        if case.trace and self.interesting(case.with_(trace=())):
            return case.with_(trace=())
        index = 0
        while index < len(case.trace):
            candidate = case.with_(
                trace=case.trace[:index] + case.trace[index + 1 :]
            )
            if self.interesting(candidate):
                case = candidate
            else:
                index += 1
        return case

    def drop_facts(self, case: ScenarioCase) -> ScenarioCase:
        index = 0
        while index < len(case.instance):
            facts = list(case.instance.facts())
            if index >= len(facts):
                break
            candidate = case.with_(
                instance=_rebuild_instance(
                    case.instance, facts[:index] + facts[index + 1 :]
                )
            )
            if self.interesting(candidate):
                case = candidate
            else:
                index += 1
        return case

    def drop_constraints(self, case: ScenarioCase) -> ScenarioCase:
        index = 0
        while True:
            constraints = sorted(case.constraints, key=render_constraint)
            if index >= len(constraints):
                break
            candidate = case.with_(
                constraints=ConstraintSet(
                    constraints[:index] + constraints[index + 1 :]
                )
            )
            if self.interesting(candidate):
                case = candidate
            else:
                index += 1
        return case

    def simplify_query(self, case: ScenarioCase) -> ScenarioCase:
        query = case.query
        if not isinstance(query, ConjunctiveQuery):
            return case

        def try_query(**changes) -> Optional[ScenarioCase]:
            fields = {
                "head_variables": query.head_variables,
                "positive_atoms": query.positive_atoms,
                "negative_atoms": query.negative_atoms,
                "comparisons": query.comparisons,
                "name": query.name,
            }
            fields.update(changes)
            try:
                candidate_query = ConjunctiveQuery(**fields)
            except EvaluationError:
                return None  # removal would make the query unsafe
            candidate = case.with_(query=candidate_query)
            return candidate if self.interesting(candidate) else None

        for attribute in ("comparisons", "negative_atoms"):
            index = 0
            while index < len(getattr(query, attribute)):
                items = getattr(query, attribute)
                candidate = try_query(
                    **{attribute: items[:index] + items[index + 1 :]}
                )
                if candidate is not None:
                    case = candidate
                    query = candidate.query
                else:
                    index += 1
        index = 0
        while len(query.positive_atoms) > 1 and index < len(query.positive_atoms):
            atoms = query.positive_atoms
            candidate = try_query(
                positive_atoms=atoms[:index] + atoms[index + 1 :]
            )
            if candidate is not None:
                case = candidate
                query = candidate.query
            else:
                index += 1
        return case


def _prune_schema(case: ScenarioCase) -> ScenarioCase:
    """Drop schema relations nothing in the witness references.

    Purely cosmetic — unused relations change no semantics — but the
    witness file should read as the minimal reproduction it is.
    """

    from repro.relational.schema import DatabaseSchema

    used = {fact.predicate for fact in case.instance.facts()}
    for constraint in case.constraints:
        if hasattr(constraint, "body"):
            for atom in list(constraint.body) + list(constraint.head_atoms):
                used.add(atom.predicate)
        else:
            used.add(constraint.predicate)
    if isinstance(case.query, ConjunctiveQuery):
        used |= set(case.query.predicates())
    for _kind, predicate, _values in case.trace:
        used.add(predicate)
    kept = DatabaseSchema(
        relation
        for relation in case.instance.schema.relations()
        if relation.name in used
    )
    if len(kept) == len(case.instance.schema):
        return case
    instance = DatabaseInstance(schema=kept)
    for fact in case.instance.facts():
        instance.add(fact)
    return case.with_(instance=instance)


def shrink(
    case: ScenarioCase,
    signature: str,
    probes: Sequence[ProbeSpec] = DEFAULT_PROBES,
    budget: CQAConfig = DEFAULT_PROBE_BUDGET,
    *,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Reduce *case* while *signature* keeps reproducing.

    Returns the smallest case found, the outcome of its last differential
    run, and reduction statistics.  If the signature does not reproduce on
    the input case at all, the input is returned unshrunk.
    """

    shrinker = _Shrinker(signature, probes, budget, max_evaluations)
    if not shrinker.interesting(case):
        outcome = shrinker.last_outcome or run_case(
            case, probes, budget, check_certain=False
        )
        return ShrinkResult(case=case, outcome=outcome, evaluations=1, removed=0)

    before = (
        len(case.instance)
        + len(list(case.constraints))
        + len(case.trace)
    )
    current = case
    while True:
        start_evaluations = shrinker.evaluations
        reduced = shrinker.drop_trace(current)
        reduced = shrinker.drop_facts(reduced)
        reduced = shrinker.drop_constraints(reduced)
        reduced = shrinker.simplify_query(reduced)
        changed = (
            len(reduced.instance) != len(current.instance)
            or len(list(reduced.constraints)) != len(list(current.constraints))
            or len(reduced.trace) != len(current.trace)
            or reduced.query is not current.query
        )
        current = reduced
        if not changed or shrinker.evaluations >= max_evaluations:
            break
        if shrinker.evaluations == start_evaluations:
            break

    current = _prune_schema(current)
    current = current.with_(description=f"shrunk witness for {signature}")
    outcome = shrinker.last_outcome
    assert outcome is not None
    if outcome.case is not current:
        outcome = run_case(current, probes, budget, check_certain=False)
    after = (
        len(current.instance)
        + len(list(current.constraints))
        + len(current.trace)
    )
    return ShrinkResult(
        case=current,
        outcome=outcome,
        evaluations=shrinker.evaluations,
        removed=before - after,
    )
