"""Witness serialization: :class:`ScenarioCase` ⇄ canonical JSON.

A *witness* is a scenario the explorer wants to outlive the run that
found it — a shrunk divergence pinned into ``tests/corpus/``, or a
failing case attached to a CI report.  The format is deliberately plain:

* the schema as ``{predicate: [attribute, ...]}``,
* facts as ``["P", [v1, v2, ...]]`` rows where JSON ``null`` is the
  paper's ``null`` constant,
* constraints and the query in the textual syntax of
  :mod:`repro.constraints.parser` (``render_constraint`` /
  ``render_query`` guarantee the round trip),
* the mutation trace as ``["insert" | "delete", "P", [values]]`` steps,
* optional provenance: seed, source, divergence record and signature.

``dumps`` is canonical — keys sorted, two-space indent, trailing
newline — so the same witness is byte-identical across runs and
processes, which the explorer's determinism acceptance test relies on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.constraints.parser import (
    parse_constraints,
    parse_query,
    render_constraint,
    render_query,
)
from repro.relational.domain import NULL, is_null
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.workloads.case import ScenarioCase

#: Format marker written into every witness file; bump on breaking change.
FORMAT_VERSION = 1


class WitnessFormatError(ValueError):
    """Raised when a witness document cannot be (de)serialized."""


@dataclass(frozen=True)
class DivergenceRecord:
    """What went wrong, as recorded in a witness file.

    ``kind`` is one of the differential runner's divergence kinds
    (``repairs``, ``repair-order``, ``answers``, ``certain``, ``crash``);
    ``left``/``right`` name the disagreeing probes; ``signature`` is the
    coarse key used to match a fresh divergence against pinned witnesses;
    ``detail`` is a human-readable account of the disagreement.
    """

    kind: str
    left: str
    right: str
    signature: str
    detail: str = ""


def _encode_value(value: Any) -> Any:
    if is_null(value):
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise WitnessFormatError(
            f"cannot serialize constant {value!r} of type {type(value).__name__}"
        )
    return value


def _decode_value(value: Any) -> Any:
    if value is None:
        return NULL
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise WitnessFormatError(
            f"cannot deserialize constant {value!r} of type {type(value).__name__}"
        )
    return value


def case_to_document(
    case: ScenarioCase,
    *,
    status: str = "open",
    divergence: Optional[DivergenceRecord] = None,
    signatures: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """The JSON-ready document for *case* (deterministic content).

    *divergence* records the primary finding; *signatures* is the full
    sorted set of divergence signatures the witness's replay produces —
    one root cause often surfaces as several kinds (the extra ≤_D repair
    also shifts the answer intersection), and the witness pins them all.
    """

    schema: Dict[str, List[str]] = {
        relation.name: list(relation.attributes)
        for relation in case.instance.schema.relations()
    }
    facts = [
        [fact.predicate, [_encode_value(v) for v in fact.values]]
        for fact in case.instance.facts()
    ]
    document: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "name": case.name,
        "description": case.description,
        "source": case.source,
        "seed": case.seed,
        "schema": schema,
        "facts": facts,
        "constraints": [
            render_constraint(constraint) for constraint in case.constraints
        ],
        "query": render_query(case.query),
        "trace": [
            [kind, predicate, [_encode_value(v) for v in values]]
            for kind, predicate, values in case.trace
        ],
        "status": status,
    }
    if divergence is not None:
        document["divergence"] = asdict(divergence)
    if signatures:
        document["signatures"] = sorted(signatures)
    elif divergence is not None:
        document["signatures"] = [divergence.signature]
    return document


def pinned_signatures_of(document: Mapping[str, Any]) -> List[str]:
    """Every divergence signature a witness document pins."""

    signatures = list(document.get("signatures", []))
    divergence = divergence_of(document)
    if divergence is not None and divergence.signature not in signatures:
        signatures.append(divergence.signature)
    return sorted(signatures)


def document_to_case(document: Mapping[str, Any]) -> ScenarioCase:
    """Rebuild the :class:`ScenarioCase` a document describes."""

    version = document.get("format")
    if version != FORMAT_VERSION:
        raise WitnessFormatError(
            f"unsupported witness format {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        schema = DatabaseSchema.from_dict(dict(document["schema"]))
        instance = DatabaseInstance(schema=schema)
        for predicate, values in document["facts"]:
            instance.add_tuple(predicate, [_decode_value(v) for v in values])
        constraints = parse_constraints(document["constraints"])
        query = parse_query(document["query"])
        trace = tuple(
            (kind, predicate, tuple(_decode_value(v) for v in values))
            for kind, predicate, values in document.get("trace", [])
        )
    except WitnessFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WitnessFormatError(f"malformed witness document: {exc}") from exc
    return ScenarioCase(
        name=str(document.get("name", "witness")),
        instance=instance,
        constraints=constraints,
        query=query,
        trace=trace,
        seed=document.get("seed"),
        source=str(document.get("source", "corpus")),
        description=str(document.get("description", "")),
    )


def divergence_of(document: Mapping[str, Any]) -> Optional[DivergenceRecord]:
    """The pinned divergence of a witness document, if any."""

    raw = document.get("divergence")
    if raw is None:
        return None
    return DivergenceRecord(
        kind=str(raw["kind"]),
        left=str(raw["left"]),
        right=str(raw["right"]),
        signature=str(raw["signature"]),
        detail=str(raw.get("detail", "")),
    )


def dumps(document: Mapping[str, Any]) -> str:
    """Canonical text for a witness document (byte-stable)."""

    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def loads(text: str) -> Dict[str, Any]:
    """Parse witness text back into a document."""

    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WitnessFormatError(f"witness is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise WitnessFormatError("witness document must be a JSON object")
    return document
