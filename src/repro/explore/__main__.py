"""Entry point for ``python -m repro.explore``."""

import sys

from repro.explore.cli import main

sys.exit(main())
