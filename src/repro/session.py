"""The ``ConsistentDatabase`` session façade — the library's front door.

The paper's pipeline (null-aware satisfaction → repairs → consistent
query answering → repair programs → first-order rewriting) is exposed
functionally by :mod:`repro.core.cqa` and friends, but every functional
call rebuilds its expensive state from scratch: violations are
re-enumerated, queries re-planned and re-rewritten, repairs re-searched,
conflict graphs re-materialised.  A :class:`ConsistentDatabase` owns all
of that state across calls:

* a **mutation surface** — :meth:`insert`, :meth:`delete`,
  :meth:`bulk_load` and transactional :meth:`batch` blocks — that keeps
  a live :class:`repro.core.repairs.ViolationTracker` warm (one seeded
  per-constraint update per fact change instead of a full sweep per
  query) and advances the instance's *generation counter*, which is what
  invalidates exactly the caches a mutation staled;
* a **query surface** — :meth:`consistent_answers`, :meth:`certain`,
  :meth:`iter_repairs`, :meth:`explain`, :meth:`report` — backed by a
  per-session LRU cache of rewritten queries, query plans, repair lists,
  conflict-graph statistics and answer sets, keyed by
  ``(query, constraint fingerprint, generation)``: repeating a query on
  an unchanged database costs one dictionary probe;
* an **engine registry** (:mod:`repro.engines`) — every query routes
  through a pluggable strategy object (``"direct"``, ``"program"``,
  ``"rewriting"``, ``"auto"``, ``"sqlite"``), so the SQLite push-down
  sits behind the same front door as the in-memory engines and new
  strategies plug in without touching dispatch code.

The functional API remains as thin wrappers over a throwaway session
(same answers, same costs on a cold call), so existing code keeps
working unchanged.

>>> from repro import ConsistentDatabase, parse_constraint, parse_query
>>> db = ConsistentDatabase(
...     {"Course": [(21, "C15"), (34, "C18")],
...      "Student": [(21, "Ann"), (45, "Paul")]},
...     [parse_constraint("Course(i, c) -> Student(i, n)")],
... )
>>> db.is_consistent()
False
>>> query = parse_query("ans(c) <- Course(i, c)")
>>> sorted(db.consistent_answers(query))
[('C15',)]
>>> db.insert("Student", (34, "Zoe"))
True
>>> db.is_consistent()
True
>>> sorted(db.consistent_answers(query))
[('C15',), ('C18',)]
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.constraints.ic import AnyConstraint, ConstraintSet
from repro.core.cqa import AnswerTuple, CQAResult, result_from_repairs
from repro.core.repairs import (
    RepairEngine,
    RepairStatistics,
    ViolationIndex,
    ViolationTracker,
    constraint_structural_key,
)
from repro.core.satisfaction import Violation
from repro.engines import CQAConfig, get_engine
from repro.logic.queries import Query
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience import Budget, Degradation, using_budget
from repro.relational.domain import Constant
from repro.relational.instance import DatabaseInstance, Fact
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:
    from repro.analysis.diagnostics import AnalysisReport
    from repro.compile.kernel import CompiledProgram
    from repro.obs.analyze import ExplainReport
    from repro.rewriting.conflicts import ConflictGraph
    from repro.rewriting.planner import CQAPlan
    from repro.rewriting.rewriter import RewrittenQuery
    from repro.sqlbackend.backend import SQLiteBackend


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of the session cache's effectiveness counters.

    ``compiled_builds``/``compiled_hits`` break out the compiled-plan
    entries (the :class:`~repro.compile.kernel.CompiledProgram` cached
    per constraint fingerprint — the key survives mutations): a healthy
    session builds at most one and serves every later violation-path
    query from the cache.
    """

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int
    compiled_builds: int = 0
    compiled_hits: int = 0
    #: Specialized plan executors (:mod:`repro.compile.codegen`) built
    #: since this session started — the generated closures live in the
    #: process-wide memo next to the compiled constraints, so a warm
    #: process reports 0.
    codegen_builds: int = 0


#: Process-wide mirrors of the per-session cache counters.  Created once
#: at import; ``MetricsRegistry.reset()`` zeroes them in place, so the
#: cached objects never go stale.
_CACHE_HITS = _metrics.counter(
    "repro_session_cache_hits_total", "session LRU cache hits"
)
_CACHE_MISSES = _metrics.counter(
    "repro_session_cache_misses_total", "session LRU cache misses"
)
_CACHE_EVICTIONS = _metrics.counter(
    "repro_session_cache_evictions_total", "session LRU cache evictions"
)
_SESSION_QUERIES = _metrics.counter(
    "repro_session_queries_total", "reports served (cached or computed)"
)
_SESSION_MUTATIONS = _metrics.counter(
    "repro_session_mutations_total", "fact insertions/deletions applied"
)
_SESSION_ROLLED_BACK = _metrics.counter(
    "repro_session_batches_rolled_back_total", "batch blocks rolled back"
)
_SESSION_TRACKER_REBUILDS = _metrics.counter(
    "repro_session_tracker_rebuilds_total", "full violation-tracker rebuilds"
)
_SESSION_COMPILED_BUILDS = _metrics.counter(
    "repro_session_compiled_programs_built_total", "compiled-plan cache fills"
)
_SESSION_COMPILED_HITS = _metrics.counter(
    "repro_session_compiled_program_hits_total",
    "compiled-plan probes served from the session cache",
)


class _LRUCache:
    """A small LRU keyed on hashable tuples, with hit/miss counters."""

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int):
        self.maxsize = max(maxsize, 1)
        self._data: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple) -> Optional[Any]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        self._data.move_to_end(key)
        self.hits += 1
        _CACHE_HITS.inc()
        return value

    def put(self, key: Tuple, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            _CACHE_EVICTIONS.inc()

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            maxsize=self.maxsize,
            evictions=self.evictions,
        )


@dataclass
class SessionStatistics:
    """Cross-call counters of one :class:`ConsistentDatabase` session."""

    queries: int = 0  #: reports served (cached or computed)
    mutations: int = 0  #: effective fact insertions/deletions
    tracker_rebuilds: int = 0  #: full violation sweeps (1 on first use; more only after out-of-band instance mutations)
    batches_rolled_back: int = 0
    compiled_programs_built: int = 0  #: compiled-plan cache fills (≤ 1 per session — the fingerprint key survives mutations)
    compiled_program_hits: int = 0  #: compiled-plan probes served from the session cache


#: One journal entry of an open batch: ("insert"/"delete", fact, tracker delta).
_JournalEntry = Tuple[str, Fact, Optional[object]]


class ConsistentDatabase:
    """A stateful database session answering queries consistently.

    Constructed from an instance (or a schema, or a plain
    ``{"P": [rows]}`` mapping) plus a constraint set, with session-wide
    defaults for every CQA knob collected in a single
    :class:`repro.engines.CQAConfig`; each query call may override them
    by keyword.

    The session owns its instance: by default the constructor takes a
    copy-on-write copy, so later mutations never touch the caller's
    object (``copy=False`` opts out — the functional wrappers use it —
    in which case out-of-band mutations of the shared instance are
    detected through the generation counter and invalidate the caches,
    at the cost of a full tracker rebuild).
    """

    def __init__(
        self,
        source: Union[DatabaseInstance, DatabaseSchema, Mapping, None] = None,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]] = (),
        *,
        copy: bool = True,
        cache_size: int = 256,
        method: str = "auto",
        null_is_unknown: bool = False,
        max_states: Optional[int] = 200_000,
        repair_mode: str = "incremental",
        estimate_repairs: bool = True,
        workers: int = 0,
        anytime: bool = False,
        deadline: Optional[float] = None,
        max_memory: Optional[int] = None,
        degrade: bool = False,
        codegen: bool = True,
        columnar: bool = True,
    ):
        if source is None:
            self._instance = DatabaseInstance()
        elif isinstance(source, DatabaseInstance):
            self._instance = source.copy() if copy else source
        elif isinstance(source, DatabaseSchema):
            self._instance = DatabaseInstance(schema=source.copy())
        elif isinstance(source, Mapping):
            self._instance = DatabaseInstance.from_dict(source)
        else:
            raise TypeError(
                "ConsistentDatabase expects a DatabaseInstance, DatabaseSchema "
                f"or mapping, not {type(source).__name__}"
            )
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._config = CQAConfig(
            method=method,
            null_is_unknown=null_is_unknown,
            max_states=max_states,
            repair_mode=repair_mode,
            estimate_repairs=estimate_repairs,
            workers=workers,
            anytime=anytime,
            deadline=deadline,
            max_memory=max_memory,
            degrade=degrade,
            codegen=codegen,
            columnar=columnar,
        )
        get_engine(self._config.method)  # fail fast on an unknown default
        #: Name-independent structural fingerprint of the constraint set —
        #: part of every query-cache key, so sessions over structurally
        #: different constraints can never share an entry even if a cache
        #: were shared between them.
        self._fingerprint: Tuple = tuple(
            constraint_structural_key(constraint) for constraint in self._constraints
        )
        self._violation_index = ViolationIndex(self._constraints)
        self._tracker: Optional[ViolationTracker] = None
        self._tracker_generation = -1
        self._cache = _LRUCache(cache_size)
        self._journal: Optional[List[_JournalEntry]] = None
        self._sql_backend: Optional["SQLiteBackend"] = None
        self._sql_backend_schema: Optional[DatabaseSchema] = None
        self._sql_backend_generation = -1
        self._constraint_relations: Optional[List[Tuple[str, int]]] = None
        #: Guards the once-per-session ``compiled_programs_built`` count
        #: (an LRU eviction may re-cache the program, never recompile it).
        self._compiled_program_cached_once = False
        #: Baseline of the process-wide code-generator counter, so
        #: ``cache_info().codegen_builds`` reports the specialized-plan
        #: builds *this session's* requests triggered (a warm process
        #: that already generated the plans reports 0 — the memo next to
        #: the compiled constraints is shared).
        from repro.compile.codegen import codegen_statistics

        self._codegen_baseline = codegen_statistics().plans_generated
        self.statistics = SessionStatistics()
        #: Counters of the most recent repair search run by this session
        #: (``None`` until a repair-enumerating query executes uncached).
        self.last_repair_statistics: Optional[RepairStatistics] = None
        #: The :class:`repro.resilience.Degradation` record of the most
        #: recent degraded request, or ``None`` when the last budgeted
        #: request (or any unbudgeted one) ran to completion.
        self.last_degradation: Optional["Degradation"] = None

    # ------------------------------------------------------------------ state
    @property
    def instance(self) -> DatabaseInstance:
        """The live instance — read-only; mutate through the session API."""

        return self._instance

    @property
    def constraints(self) -> ConstraintSet:
        """The integrity constraints the session enforces and repairs against."""

        return self._constraints

    @property
    def config(self) -> CQAConfig:
        """The session-wide CQA defaults (overridable per call)."""

        return self._config

    @property
    def generation(self) -> int:
        """The instance's mutation counter (the cache-invalidation key)."""

        return self._instance.generation

    def __len__(self) -> int:
        return len(self._instance)

    def __contains__(self, fact: object) -> bool:
        return fact in self._instance

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        """Iterate the instance's facts (optionally one predicate)."""

        return self._instance.facts(predicate)

    def snapshot(self) -> DatabaseInstance:
        """An independent copy-on-write copy of the current instance."""

        return self._instance.copy()

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size counters of the session's LRU cache.

        The ``compiled_*`` fields single out the compiled-plan entry:
        ``compiled_builds`` is how many times this session filled it
        (at most once — the constraint fingerprint key survives
        mutations) and ``compiled_hits`` how many violation-path
        queries it subsequently served.
        """

        from repro.compile.codegen import codegen_statistics

        info = self._cache.info()
        return replace(
            info,
            compiled_builds=self.statistics.compiled_programs_built,
            compiled_hits=self.statistics.compiled_program_hits,
            codegen_builds=(
                codegen_statistics().plans_generated - self._codegen_baseline
            ),
        )

    def close(self) -> None:
        """Release held resources (the cached SQLite mirror) and the caches."""

        if self._sql_backend is not None:
            self._sql_backend.close()
            self._sql_backend = None
            self._sql_backend_schema = None
            self._sql_backend_generation = -1
        self._cache.clear()

    def __enter__(self) -> "ConsistentDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConsistentDatabase({len(self._instance)} facts, "
            f"{len(self._constraints)} constraints, method={self._config.method!r}, "
            f"generation={self.generation})"
        )

    # ------------------------------------------------------------------ compiled plans
    def compiled_program(self) -> "CompiledProgram":
        """The constraint set's compiled plans, cached across mutations.

        The :class:`~repro.compile.kernel.CompiledProgram` depends only
        on the constraints — never on the data — so it lives in the
        session LRU under the mutation-surviving constraint fingerprint:
        ``compiled_builds`` is incremented on the first fill only, so it
        stays at 1 for the session's lifetime however much the LRU
        churns.  Compilation itself happens at most once per (schema,
        constraints) pair, ever: the program object is owned by the
        session's :class:`~repro.core.repairs.ViolationIndex` (an LRU
        eviction merely re-caches the same object, it never recompiles),
        and the process-wide memo of :mod:`repro.compile.kernel` dedupes
        even across sessions.  Every violation-path consumer — the warm
        tracker, the repair engines, the parallel workers — executes
        these plans.

        >>> from repro import ConsistentDatabase, parse_constraint
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> db.compiled_program() is db.compiled_program()
        True
        >>> db.cache_info().compiled_builds
        1
        """

        key = ("compiled", self._fingerprint)
        cached = self._cache.get(key)  # promotes: the hottest entry stays resident
        if cached is not None:
            self.statistics.compiled_program_hits += 1
            _SESSION_COMPILED_HITS.inc()
            return cached
        with _trace.span("compile.session"):
            program = self._violation_index.program
        self._cache.put(key, program)
        if not self._compiled_program_cached_once:
            self._compiled_program_cached_once = True
            self.statistics.compiled_programs_built += 1
            _SESSION_COMPILED_BUILDS.inc()
        return program

    # ------------------------------------------------------------------ violations
    def _ensure_tracker(self) -> ViolationTracker:
        """The warm violation tracker, (re)built only when missing or stale.

        Stale means the instance's generation moved without the session
        seeing the mutation — possible only with ``copy=False`` sharing.
        Every session-API mutation keeps the tracker exactly in sync, so
        steady-state sessions pay the full sweep once, ever.
        """

        if (
            self._tracker is None
            or self._tracker_generation != self._instance.generation
        ):
            self.compiled_program()  # plans served from the fingerprint cache
            self._tracker = ViolationTracker(self._instance, self._violation_index)
            self._tracker_generation = self._instance.generation
            self.statistics.tracker_rebuilds += 1
            _SESSION_TRACKER_REBUILDS.inc()
        return self._tracker

    def is_consistent(self) -> bool:
        """Does the current instance satisfy every constraint under ``|=_N``?

        >>> from repro import ConsistentDatabase, parse_constraint
        >>> key = parse_constraint("Emp(e, d), Emp(e, f) -> d = f")
        >>> ConsistentDatabase({"Emp": [("e1", "sales")]}, [key]).is_consistent()
        True
        >>> ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]}, [key]).is_consistent()
        False
        """

        return not self._ensure_tracker().has_violations()

    def violations(self) -> List[Violation]:
        """The current ground violations, maintained incrementally."""

        return self._ensure_tracker().violations()

    def violation_count(self) -> int:
        """Number of current ground violations."""

        return self._ensure_tracker().violation_count()

    # ------------------------------------------------------------------ mutation
    def _as_fact(
        self, fact_or_predicate: Union[Fact, str], values: Optional[Sequence[Constant]]
    ) -> Fact:
        if isinstance(fact_or_predicate, Fact):
            if values is not None:
                raise TypeError("pass either a Fact or (predicate, values), not both")
            return fact_or_predicate
        if values is None:
            raise TypeError("insert/delete with a predicate name needs values")
        return Fact(fact_or_predicate, values)

    def insert(
        self,
        fact_or_predicate: Union[Fact, str],
        values: Optional[Sequence[Constant]] = None,
    ) -> bool:
        """Insert one fact.

        Args:
            fact_or_predicate: a :class:`Fact`, or a predicate name
                combined with *values*.
            values: the tuple to insert when a predicate name is given.

        Returns:
            True iff the fact was not already present.

        Raises:
            TypeError: when a :class:`Fact` is combined with *values*,
                or a predicate name comes without them.

        The warm tracker absorbs the change through one seeded
        per-constraint update; every generation-keyed cache entry is
        implicitly invalidated by the bumped counter.

        >>> from repro import ConsistentDatabase, parse_constraint
        >>> db = ConsistentDatabase(
        ...     {"Course": [(21, "C15")]},
        ...     [parse_constraint("Course(i, c) -> Student(i, n)")],
        ... )
        >>> db.is_consistent()
        False
        >>> db.insert("Student", (21, "Ann"))
        True
        >>> db.insert("Student", (21, "Ann"))  # already present
        False
        >>> db.is_consistent()
        True
        """

        fact = self._as_fact(fact_or_predicate, values)
        if fact in self._instance:
            return False
        tracker = self._live_tracker()
        self._instance.add(fact)
        delta = tracker.notify_added(fact) if tracker is not None else None
        self._record_mutation("insert", fact, delta)
        return True

    def delete(
        self,
        fact_or_predicate: Union[Fact, str],
        values: Optional[Sequence[Constant]] = None,
    ) -> bool:
        """Delete one fact.

        Args:
            fact_or_predicate: a :class:`Fact`, or a predicate name
                combined with *values*.
            values: the tuple to delete when a predicate name is given.

        Returns:
            True iff the fact was present (and is now gone).

        >>> from repro import ConsistentDatabase
        >>> db = ConsistentDatabase({"Emp": [("e1", "sales")]})
        >>> db.delete("Emp", ("e1", "sales"))
        True
        >>> db.delete("Emp", ("e1", "sales"))
        False
        """

        fact = self._as_fact(fact_or_predicate, values)
        if fact not in self._instance:
            return False
        tracker = self._live_tracker()
        self._instance.discard(fact)
        delta = tracker.notify_removed(fact) if tracker is not None else None
        self._record_mutation("delete", fact, delta)
        return True

    def bulk_load(
        self,
        data: Union[Mapping[str, Iterable[Sequence[Constant]]], Iterable[Fact]],
    ) -> int:
        """Insert many facts.

        Args:
            data: the ``{"P": [rows]}`` mapping shape of
                :meth:`DatabaseInstance.from_dict`, or any iterable of
                :class:`Fact`.

        Returns:
            How many of the facts were new.

        Before the tracker's first build this is pure insertion (the
        sweep happens lazily, once, when a consumer first needs
        violations).

        >>> from repro import ConsistentDatabase
        >>> db = ConsistentDatabase()
        >>> db.bulk_load({"Emp": [("e1", "sales"), ("e2", "hr")]})
        2
        >>> len(db)
        2
        """

        inserted = 0
        if isinstance(data, Mapping):
            for predicate, rows in data.items():
                for row in rows:
                    inserted += self.insert(Fact(predicate, row))
        else:
            for fact in data:
                inserted += self.insert(fact)
        return inserted

    def _live_tracker(self) -> Optional[ViolationTracker]:
        """The tracker if it exists and is in sync; drops it if stale."""

        if self._tracker is None:
            return None
        if self._tracker_generation != self._instance.generation:
            # The shared instance was mutated out-of-band: the store is
            # unusable, rebuild lazily on next demand.
            self._tracker = None
            self._tracker_generation = -1
            return None
        return self._tracker

    def _record_mutation(self, kind: str, fact: Fact, delta: Optional[object]) -> None:
        self._tracker_generation = self._instance.generation
        self.statistics.mutations += 1
        _SESSION_MUTATIONS.inc()  # gross count: rollbacks are tallied separately
        if self._journal is not None:
            self._journal.append((kind, fact, delta))

    @contextmanager
    def batch(self) -> Iterator["ConsistentDatabase"]:
        """Transactional mutation block: roll everything back on error.

        ::

            with db.batch():
                db.insert("Student", (34, "Zoe"))
                db.delete("Course", (21, "C15"))

        On an exception every mutation of the block is undone — instance
        and violation tracker both — and the exception propagates.  The
        generation counter still advances (it is monotone by contract),
        so caches are simply re-filled on the next query.  Batches do not
        nest.
        """

        if self._journal is not None:
            raise RuntimeError("ConsistentDatabase.batch() blocks cannot nest")
        journal: List[_JournalEntry] = []
        self._journal = journal
        try:
            yield self
        except BaseException:
            self._journal = None
            self._rollback(journal)
            raise
        else:
            self._journal = None

    def _rollback(self, journal: List[_JournalEntry]) -> None:
        # A journal entry without a tracker delta means the mutation
        # happened before the tracker existed.  If the tracker was then
        # built *mid-batch* (a query inside the block), its store already
        # includes those pre-tracker mutations and no delta can undo
        # them — the store is unrevertable, so discard it and let the
        # next consumer rebuild from the restored instance.
        revertable = self._tracker is not None and all(
            delta is not None for _, _, delta in journal
        )
        for kind, fact, delta in reversed(journal):
            if kind == "insert":
                self._instance.discard(fact)
            else:
                self._instance.add(fact)
            if revertable and delta is not None:
                self._tracker.revert(delta)
        if revertable:
            self._tracker_generation = self._instance.generation
        else:
            self._tracker = None
            self._tracker_generation = -1
        self.statistics.mutations -= len(journal)
        self.statistics.batches_rolled_back += 1
        _SESSION_ROLLED_BACK.inc()

    # ------------------------------------------------------------------ budgets
    def _budget_scope(self, config: CQAConfig):
        """The ambient-budget context for one exact (non-streaming) request.

        Builds a strict :class:`repro.resilience.Budget` from the
        config's ``deadline``/``max_memory`` and installs it for the
        call — every layer underneath (repair search, compiled kernel,
        SQL backend) then checks it cooperatively and raises the typed
        :class:`repro.errors.BudgetExceededError` on exhaustion.  Exact
        surfaces never degrade: a partial answer set would be silently
        wrong, so ``degrade=True`` only changes behaviour on the
        streaming surfaces.  No-op when no knob is set, or when an
        outer scope already installed a budget (a nested scope would
        restart the deadline clock).
        """

        from repro.resilience import budget as _budget_module

        if (
            (config.deadline is None and config.max_memory is None)
            or _budget_module.active()
        ):
            return using_budget(None)
        return using_budget(
            Budget(deadline=config.deadline, max_memory=config.max_memory)
        )

    @contextmanager
    def _execution_scope(self, config: CQAConfig):
        """Budget plus execution-backend overrides for one request.

        Installs the request budget (see :meth:`_budget_scope`) and, when
        the config opts *out* of a speed layer (``codegen=False`` /
        ``columnar=False``), scopes the corresponding fallback override
        for the duration of the call.  The default ``True`` deliberately
        forces nothing, so process-wide test/benchmark overrides and the
        ``REPRO_CODEGEN=0`` / ``REPRO_COLUMNAR=0`` escape hatches keep
        working underneath a session.
        """

        from repro.compile import codegen as _codegen_module
        from repro.relational import columnar as _columnar_module

        with self._budget_scope(config):
            with _codegen_module.overridden(None if config.codegen else False):
                with _columnar_module.overridden(None if config.columnar else False):
                    yield

    def cancel_budget(self) -> bool:
        """Cooperatively cancel the currently running budgeted request.

        Intended to be called from another thread (or a signal
        handler): the active request observes the flag at its next
        checkpoint and raises
        :class:`repro.errors.QueryCancelledError` (or degrades, on a
        degrade-mode stream).  Returns False when no budget is active.
        """

        from repro.resilience import budget as _budget_module

        active = _budget_module.active()
        if not active:
            return False
        active.cancel()
        return True

    # ------------------------------------------------------------------ queries
    def report(self, query: Query, **overrides: Any) -> CQAResult:
        """Consistent answers plus repair statistics (the full CQAResult).

        Args:
            query: the conjunctive or first-order query.
            **overrides: any :class:`repro.engines.CQAConfig` field,
                e.g. ``db.report(q, method="direct",
                repair_mode="parallel", workers=4)``.

        Returns:
            A fully populated :class:`repro.core.cqa.CQAResult`
            (defensively copied — mutating it cannot corrupt the cache).

        Raises:
            TypeError: on an override that is not a config field.
            ValueError: on an unregistered ``method``.

        Results are cached per (query, constraint fingerprint,
        generation, config), so an identical repeat is one dictionary
        probe.

        >>> from repro import ConsistentDatabase, parse_constraint, parse_query
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> result = db.report(parse_query("ans(e) <- Emp(e, d)"))
        >>> (sorted(result.answers), result.repair_count)
        ([('e1',)], 2)
        """

        config = self._config.merged(overrides)
        engine = get_engine(config.method)
        self.statistics.queries += 1
        _SESSION_QUERIES.inc()
        key = (
            "answers",
            query,
            self._fingerprint,
            self._instance.generation,
            config.cache_key(),
        )
        cached = self._cache.get(key)
        if cached is not None:
            return self._result_copy(cached)
        with _trace.span("session.report") as sp:
            if sp:
                sp.add(query=str(query), method=config.method)
            with self._execution_scope(config):
                result = engine.answers_report(self, query, config)
        self._cache.put(key, result)
        return self._result_copy(result)

    @staticmethod
    def _result_copy(result: CQAResult) -> CQAResult:
        """A shallow defensive copy so callers cannot corrupt the cache."""

        return replace(
            result, per_repair_answer_counts=list(result.per_repair_answer_counts)
        )

    def consistent_answers(
        self, query: Query, **overrides: Any
    ) -> FrozenSet[AnswerTuple]:
        """The consistent answers to *query* (Definition 8).

        Args:
            query: the conjunctive or first-order query.
            **overrides: any :class:`repro.engines.CQAConfig` field.

        Returns:
            The tuples that are answers in **every** repair, as a
            frozenset.  Skips the rewriting path's repair-count estimate
            unless asked (``estimate_repairs=True``), exactly like the
            functional wrapper.

        >>> from repro import ConsistentDatabase, parse_constraint, parse_query
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr"), ("e2", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> sorted(db.consistent_answers(parse_query("ans(e) <- Emp(e, d)")))
        [('e1',), ('e2',)]
        >>> sorted(db.consistent_answers(parse_query("ans(d) <- Emp(e, d)")))
        [('hr',)]
        """

        overrides.setdefault("estimate_repairs", False)
        return self.report(query, **overrides).answers

    def certain(
        self,
        query: Query,
        candidate: Optional[Sequence[Constant]] = None,
        **overrides: Any,
    ) -> bool:
        """Is *candidate* an answer in every repair?  (Boolean CQA.)

        Args:
            query: the query under decision; must be boolean when
                *candidate* is ``None``.
            candidate: the answer tuple to certify, for open queries.
            **overrides: any :class:`repro.engines.CQAConfig` field;
                notably ``anytime=True`` asks the engine to
                short-circuit: repairs stream from the anytime frontier
                and the first one that refutes the candidate ends the
                computation — the search never finishes on a "no".

        Returns:
            True iff the candidate is an answer (resp. the boolean query
            holds) in **every** repair (Definition 8).

        >>> from repro import ConsistentDatabase, parse_constraint, parse_query
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr"), ("e2", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> query = parse_query("ans(e) <- Emp(e, d)")
        >>> db.certain(query, ("e2",), anytime=True)
        True
        >>> db.certain(query, ("e1",))  # e1 survives in both repairs
        True
        >>> db.certain(parse_query("ans(d) <- Emp(e, d)"), ("sales",), anytime=True)
        False
        """

        overrides.setdefault("estimate_repairs", False)
        config = self._config.merged(overrides)
        if config.anytime:
            engine = get_engine(config.method)
            queries_before = self.statistics.queries
            outcome = engine.certain_anytime(self, query, candidate, config)
            if outcome is not None:
                # Count the call exactly once: engines that route through
                # report() (e.g. the rewriting path) already did.
                if self.statistics.queries == queries_before:
                    self.statistics.queries += 1
                    _SESSION_QUERIES.inc()
                return outcome
        result = self.report(query, **overrides)
        if candidate is not None:
            return tuple(candidate) in result.answers
        if result.repair_count == 0 and not result.repair_count_estimated:
            return False
        return result.certain

    def explain(
        self, query: Query, *, analyze: bool = False, **overrides: Any
    ) -> Union["CQAPlan", "ExplainReport"]:
        """The cost-based plan for *query* — optionally executed and measured.

        Args:
            query: the query to plan.
            analyze: ``True`` *executes* one full request under
                instrumentation — EXPLAIN ANALYZE — and returns an
                :class:`repro.obs.analyze.ExplainReport` annotating the
                plan with actual rows scanned per ``JoinPlan`` step,
                violations found, delta-plan hit rates, cache state,
                wall-clock per phase and the captured span tree
                (``report.render()`` pretty-prints it).  ``False`` (the
                default) plans only and executes nothing.
            **overrides: any :class:`repro.engines.CQAConfig` field —
                notably ``workers=N`` lets the plan recommend the
                parallel repair search for enumeration fallbacks.

        Returns:
            The cached-per-generation
            :class:`repro.rewriting.planner.CQAPlan` (or the
            :class:`~repro.obs.analyze.ExplainReport` wrapping it when
            ``analyze=True``); a successful plan also primes the
            rewriting cache.

        >>> from repro import ConsistentDatabase, parse_constraint, parse_query
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> db.explain(parse_query("ans(e) <- Emp(e, d)")).method
        'rewriting'

        The returned plan also reports whether the session already holds
        the constraint set's compiled plans
        (``plan.compiled_program_cached``), so the cost of an
        enumeration fallback is visible up front:

        >>> db.explain(parse_query("ans(e) <- Emp(e, d)")).compiled_program_cached
        False
        >>> _ = db.is_consistent()  # first violation-path call caches the plans
        >>> db.explain(parse_query("ans(e) <- Emp(e, d)")).compiled_program_cached
        True
        """

        if analyze:
            from repro.obs.analyze import analyze_request

            return analyze_request(self, query, overrides)
        config = self._config.merged(overrides)
        plan = self.plan(query, config)
        return replace(
            plan,
            compiled_program_cached=self._compiled_program_cached_once,
            codegen_builds=self.cache_info().codegen_builds,
        )

    def analyze(self, query: Optional[Query] = None) -> "AnalysisReport":
        """Statically analyze the constraint set (and optionally *query*).

        Runs every check of :func:`repro.analysis.analyze` — RIC-acyclicity
        (``E101``), the non-conflicting condition (``E102``), arity
        consistency (``E103``), statically decidable consequents
        (``W201``/``W204``), shadowed FDs (``W202``), duplicates
        (``W203``) and, given a query, rewriting-fragment membership
        (``I301``, with the precise clause violated) and constraint–query
        independence (``I302``).  Purely syntactic: no data is read, and
        the report is cached per constraint fingerprint, so it survives
        mutations.

        >>> from repro import ConsistentDatabase, parse_constraints, parse_query
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales")]},
        ...     parse_constraints(["Emp(e, d), Emp(e, f) -> d = f"]),
        ... )
        >>> db.analyze().codes()
        ()
        >>> db.analyze(parse_query("ans(p) <- Project(p, b)")).codes()
        ('I302',)
        """

        key = ("analysis", self._fingerprint, query)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.analysis import analyze as analyze_constraints_and_query

        with _trace.span("session.analyze") as sp:
            report = analyze_constraints_and_query(self._constraints, query)
            if sp:
                sp.add(diagnostics=len(report))
        self._cache.put(key, report)
        return report

    def check(self, *, strict: bool = False) -> "AnalysisReport":
        """Admission-control view of :meth:`analyze` (constraints only).

        Args:
            strict: raise :class:`repro.analysis.ConstraintProgramError`
                when the report contains any error-severity diagnostic
                (RIC cycles, conflicting NNCs, arity mismatches) instead
                of returning it — the load-time gate a service front door
                wants.

        Returns:
            The (possibly empty) :class:`repro.analysis.AnalysisReport`.
        """

        report = self.analyze()
        if strict:
            report.raise_for_errors()
        return report

    def iter_repairs(
        self,
        method: str = "direct",
        stream: Optional[bool] = None,
        **overrides: Any,
    ) -> Iterator[DatabaseInstance]:
        """Lazily iterate the repairs of the current instance.

        Args:
            method: ``"direct"`` (the repair engine) or ``"program"``
                (the stable-model route).
            stream: ``True`` yields each repair at the earliest moment
                its ``≤_D``-minimality is *proven*, while the frontier
                search is still running (see
                :class:`repro.core.parallel.AnytimeRepairStream`);
                ``False`` enumerates fully first and then iterates the
                cached list.  ``None`` (default) streams exactly when
                the effective ``repair_mode`` is ``"parallel"``.
            **overrides: any :class:`repro.engines.CQAConfig` field.

        Returns:
            An iterator of independent copy-on-write instances; callers
            may mutate what they receive.

        Raises:
            ValueError: for an unknown *method*, or ``stream=True``
                combined with ``method="program"`` (stable models are
                not produced frontier-wise).

        The streamed repair *set* is always exactly the enumerated one —
        streaming changes when each repair becomes available, never
        which; a fully consumed stream also fills the session's repair
        cache, so a follow-up query pays nothing extra.

        >>> from repro import ConsistentDatabase, parse_constraint
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> [sorted(map(repr, r.facts())) for r in db.iter_repairs(stream=True)]
        [['Emp(e1, sales)'], ['Emp(e1, hr)']]
        """

        if method not in ("direct", "program"):
            raise ValueError(
                f"iter_repairs() enumerates repairs; method must be 'direct' or "
                f"'program', not {method!r}"
            )
        config = self._config.merged(overrides)
        if stream is None:
            stream = method == "direct" and config.repair_mode == "parallel"
        if stream and method != "direct":
            raise ValueError("stream=True requires method='direct'")

        if stream:

            def generate_streaming() -> Iterator[DatabaseInstance]:
                for repair in self.stream_repairs(config):
                    yield repair.copy()

            return generate_streaming()

        def generate() -> Iterator[DatabaseInstance]:
            for repair in self.repairs_list(method, config):
                yield repair.copy()

        return generate()

    def stream_repairs(self, config: Optional[CQAConfig] = None) -> Iterator[DatabaseInstance]:
        """Yield repairs as the anytime frontier search proves them minimal.

        The engine-facing sibling of ``iter_repairs(stream=True)``:
        yields the repairs of a copy-on-write snapshot of the current
        instance (safe against concurrent session mutations) without
        defensive copies.  When a cached repair list already exists for
        this generation — under the configured repair mode *or* the
        parallel one; every mode's list is bit-identical — it is
        replayed instead, already "proven".  A fully drained stream
        stores the canonical repair list under the **parallel** cache
        key (the engine that actually produced it, so per-mode
        statistics and budget semantics stay honest) and updates
        ``last_repair_statistics``; an abandoned stream (e.g. an
        anytime ``certain`` that found its counterexample) cancels the
        remaining frontier tasks.

        Note on budgets: the frontier search's ``max_states`` applies
        to the *sum* of per-task states, which on constraint sets with
        consequent atoms can exceed the sequential engines'
        unique-state count — a streaming call may hit the budget where
        an incremental enumeration of the same instance would not.

        Args:
            config: the merged :class:`repro.engines.CQAConfig`;
                defaults to the session config.  ``workers >= 2``
                distributes the search across processes.
        """

        from repro.core.repairs import PARALLEL_METHOD

        config = config if config is not None else self._config
        generation = self._instance.generation
        parallel_config = (
            config
            if config.repair_mode == PARALLEL_METHOD
            else config.merged({"repair_mode": PARALLEL_METHOD})
        )
        parallel_key = self._direct_repairs_key(parallel_config, generation)
        for key in {self._direct_repairs_key(config, generation), parallel_key}:
            cached = self._cache.get(key)
            if cached is not None:
                yield from cached
                return

        from repro.core.parallel import AnytimeRepairStream, ParallelRepairSearch

        budget: Optional[Budget] = None
        if (
            config.deadline is not None
            or config.max_memory is not None
            or config.degrade
        ):
            # Degrade mode moves the state cap into the budget (so running
            # out yields a flagged partial stream instead of the strict
            # RepairSearchBudgetExceeded the search would raise itself).
            budget = Budget(
                deadline=config.deadline,
                max_states=config.max_states if config.degrade else None,
                max_memory=config.max_memory,
                degrade=config.degrade,
            )
        snapshot = self._instance.copy()
        search = ParallelRepairSearch(
            snapshot,
            self._constraints,
            workers=config.workers,
            max_states=None if config.degrade else config.max_states,
            violation_index=self._violation_index,
            budget=budget,
        )
        stream = AnytimeRepairStream(search, schema=snapshot.schema)
        self.last_degradation = None
        try:
            # The finally also covers *abandonment*: closing this generator
            # early (GeneratorExit) must reap the search's worker pool, not
            # leak it — AnytimeRepairStream's own teardown runs first via
            # the yield-from chain, this is the defensive second layer.
            yield from stream
        finally:
            search.close()
        if stream.degradation is not None:
            self.last_degradation = stream.degradation
        if stream.ordered_repairs is not None:
            search.statistics.repairs_found = len(stream.ordered_repairs)
            self.last_repair_statistics = search.statistics
            _metrics.absorb_repair_statistics(search.statistics)
            self._cache.put(parallel_key, stream.ordered_repairs)

    def repair_count(self, method: str = "direct", **overrides: Any) -> int:
        """The exact number of repairs (enumerates them, cached).

        Args:
            method: ``"direct"`` or ``"program"``.
            **overrides: any :class:`repro.engines.CQAConfig` field.

        Returns:
            ``len(repairs)`` — exact, unlike the conflict-graph
            estimate the rewriting engines report.

        >>> from repro import ConsistentDatabase, parse_constraint
        >>> db = ConsistentDatabase(
        ...     {"Emp": [("e1", "sales"), ("e1", "hr")]},
        ...     [parse_constraint("Emp(e, d), Emp(e, f) -> d = f")],
        ... )
        >>> db.repair_count()
        2
        """

        config = self._config.merged(overrides)
        return len(self.repairs_list(method, config))

    # ------------------------------------------------------------------ engine-facing cache surface
    def _direct_repairs_key(self, config: CQAConfig, generation: int) -> Tuple:
        """Cache key of the direct enumeration's repair list.

        Deliberately excludes ``workers``: every repair mode (and any
        worker count) returns a bit-identical list, so segmenting the
        cache by it would only recompute identical entries.
        ``repair_mode`` stays in the key because the modes differ in
        the statistics they leave behind, which tests inspect.
        """

        return (
            "repairs",
            "direct",
            self._fingerprint,
            generation,
            config.repair_mode,
            config.max_states,
        )

    def repairs_list(self, method: str, config: CQAConfig) -> List[DatabaseInstance]:
        """The repairs of the current instance, cached per generation.

        ``"direct"`` runs :class:`RepairEngine` — warm-started from the
        session's violation tracker in ``"incremental"`` repair mode, so
        no full violation sweep happens per query — and ``"program"``
        the stable-model route.  Engines and the repair iterator share
        this cache; treat the returned list and its instances as
        read-only.
        """

        generation = self._instance.generation
        if method == "direct":
            key = self._direct_repairs_key(config, generation)
        elif method == "program":
            key = ("repairs", "program", self._fingerprint, generation)
        else:
            raise ValueError(f"unknown repair enumeration method {method!r}")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if method == "direct":
            self.compiled_program()  # the search executes the cached plans
            engine = RepairEngine(
                self._constraints,
                max_states=config.max_states,
                method=config.repair_mode,
                violation_index=self._violation_index,
                workers=config.workers,
            )
            seed = (
                self._ensure_tracker() if config.repair_mode == "incremental" else None
            )
            with self._execution_scope(config):
                found = engine.repairs(self._instance, seed_tracker=seed)
            self.last_repair_statistics = engine.statistics
        else:
            from repro.core.repair_program import program_repairs

            with self._execution_scope(config):
                found = program_repairs(self._instance, self._constraints).repairs
        self._cache.put(key, found)
        return found

    def rewritten(self, query: Query) -> "RewrittenQuery":
        """The first-order rewriting of *query*, cached per fingerprint.

        The rewriting depends only on (query, constraints) — never on the
        data — so this cache survives mutations.  Unsupported pairs are
        negatively cached: the analysis runs once and the same
        :class:`RewritingUnsupportedError` reason is re-raised instantly
        afterwards.
        """

        from repro.rewriting import RewritingUnsupportedError, rewrite_query

        key = ("rewrite", query, self._fingerprint)
        cached = self._cache.get(key)
        if cached is not None:
            if isinstance(cached, RewritingUnsupportedError):
                # copy() preserves the structured payload (clause,
                # constraint, diagnostic) while keeping the cached
                # instance's traceback out of the raise.
                raise cached.copy()
            return cached
        try:
            with _trace.span("query.rewrite") as sp:
                if sp:
                    sp.add(query=str(query))
                result = rewrite_query(query, self._constraints)
        except RewritingUnsupportedError as error:
            self._cache.put(key, error)
            raise
        self._cache.put(key, result)
        return result

    def plan(self, query: Query, config: CQAConfig) -> "CQAPlan":
        """The cost-based :class:`CQAPlan` for *query*, cached per generation.

        A successful plan primes the rewriting cache with the rewritten
        query it carries, so ``explain()`` followed by a query pays the
        rewriting once.
        """

        key = (
            "plan",
            query,
            self._fingerprint,
            self._instance.generation,
            config.max_states,
            config.workers,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.rewriting import plan_cqa

        with _trace.span("session.plan") as sp:
            if sp:
                sp.add(query=str(query))
            plan = plan_cqa(
                self._instance,
                self._constraints,
                query,
                max_states=config.max_states,
                workers=config.workers,
            )
            if sp:
                sp.add(method=plan.method, supported=plan.supported)
        if plan.rewritten is not None:
            self._cache.put(("rewrite", query, self._fingerprint), plan.rewritten)
        self._cache.put(key, plan)
        return plan

    def conflict_graph(self) -> "ConflictGraph":
        """The instance's conflict graph, cached per generation."""

        key = ("conflicts", self._fingerprint, self._instance.generation)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.rewriting import ConflictGraph

        with _trace.span("conflicts.build"):
            graph = ConflictGraph.build(self._instance, self._constraints)
        self._cache.put(key, graph)
        return graph

    def sql_backend(self, query: Optional[Query] = None) -> "SQLiteBackend":
        """An SQLite mirror of the current instance, rebuilt only on mutation.

        Held outside the LRU (a live connection should be closed, not
        silently evicted); :meth:`close` releases it.  The mirror is
        built over a copy-on-write copy of the instance whose schema is
        extended with any relation the constraints or *query* mention
        that the live schema never learned — an inferred schema only
        knows relations with at least one fact — so SQL evaluation
        agrees with the in-memory evaluators on empty relations instead
        of failing on a missing table, and the caller's schema is never
        mutated by a query.
        """

        needed = self._relations_needed(query)
        generation = self._instance.generation
        if (
            self._sql_backend is not None
            and self._sql_backend_generation == generation
            and all(
                predicate in self._sql_backend_schema for predicate, _ in needed
            )
        ):
            return self._sql_backend
        if self._sql_backend is not None:
            self._sql_backend.close()
        from repro.sqlbackend.backend import SQLiteBackend

        mirror = self._instance.copy()
        for predicate, arity in needed:
            if predicate not in mirror.schema:
                mirror.schema.relation_from_arity(predicate, arity)
        with _trace.span("sql.mirror") as sp:
            if sp:
                sp.add(facts=len(mirror))
            self._sql_backend = SQLiteBackend(mirror, self._constraints)
        self._sql_backend_schema = mirror.schema
        self._sql_backend_generation = generation
        return self._sql_backend

    def _relations_needed(self, query: Optional[Query]) -> List[Tuple[str, int]]:
        """(predicate, arity) pairs the SQL layer must have tables for."""

        from repro.constraints.ic import NotNullConstraint

        if self._constraint_relations is None:
            relations: List[Tuple[str, int]] = []
            for constraint in self._constraints:
                if isinstance(constraint, NotNullConstraint):
                    if constraint.arity is not None:
                        relations.append((constraint.predicate, constraint.arity))
                    continue
                for atom in (*constraint.body, *constraint.head_atoms):
                    relations.append((atom.predicate, atom.arity))
            self._constraint_relations = relations
        needed = list(self._constraint_relations)
        for atom in getattr(query, "positive_atoms", ()) or ():
            needed.append((atom.predicate, atom.arity))
        return needed
