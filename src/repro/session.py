"""The ``ConsistentDatabase`` session façade — the library's front door.

The paper's pipeline (null-aware satisfaction → repairs → consistent
query answering → repair programs → first-order rewriting) is exposed
functionally by :mod:`repro.core.cqa` and friends, but every functional
call rebuilds its expensive state from scratch: violations are
re-enumerated, queries re-planned and re-rewritten, repairs re-searched,
conflict graphs re-materialised.  A :class:`ConsistentDatabase` owns all
of that state across calls:

* a **mutation surface** — :meth:`insert`, :meth:`delete`,
  :meth:`bulk_load` and transactional :meth:`batch` blocks — that keeps
  a live :class:`repro.core.repairs.ViolationTracker` warm (one seeded
  per-constraint update per fact change instead of a full sweep per
  query) and advances the instance's *generation counter*, which is what
  invalidates exactly the caches a mutation staled;
* a **query surface** — :meth:`consistent_answers`, :meth:`certain`,
  :meth:`iter_repairs`, :meth:`explain`, :meth:`report` — backed by a
  per-session LRU cache of rewritten queries, query plans, repair lists,
  conflict-graph statistics and answer sets, keyed by
  ``(query, constraint fingerprint, generation)``: repeating a query on
  an unchanged database costs one dictionary probe;
* an **engine registry** (:mod:`repro.engines`) — every query routes
  through a pluggable strategy object (``"direct"``, ``"program"``,
  ``"rewriting"``, ``"auto"``, ``"sqlite"``), so the SQLite push-down
  sits behind the same front door as the in-memory engines and new
  strategies plug in without touching dispatch code.

The functional API remains as thin wrappers over a throwaway session
(same answers, same costs on a cold call), so existing code keeps
working unchanged.

>>> from repro import ConsistentDatabase, parse_constraint, parse_query
>>> db = ConsistentDatabase(
...     {"Course": [(21, "C15"), (34, "C18")],
...      "Student": [(21, "Ann"), (45, "Paul")]},
...     [parse_constraint("Course(i, c) -> Student(i, n)")],
... )
>>> db.is_consistent()
False
>>> query = parse_query("ans(c) <- Course(i, c)")
>>> sorted(db.consistent_answers(query))
[('C15',)]
>>> db.insert("Student", (34, "Zoe"))
True
>>> db.is_consistent()
True
>>> sorted(db.consistent_answers(query))
[('C15',), ('C18',)]
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.constraints.ic import AnyConstraint, ConstraintSet
from repro.core.cqa import AnswerTuple, CQAResult, result_from_repairs
from repro.core.repairs import (
    RepairEngine,
    RepairStatistics,
    ViolationIndex,
    ViolationTracker,
    constraint_structural_key,
)
from repro.core.satisfaction import Violation
from repro.engines import CQAConfig, get_engine
from repro.logic.queries import Query
from repro.relational.domain import Constant
from repro.relational.instance import DatabaseInstance, Fact
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:
    from repro.rewriting.conflicts import ConflictGraph
    from repro.rewriting.planner import CQAPlan
    from repro.rewriting.rewriter import RewrittenQuery
    from repro.sqlbackend.backend import SQLiteBackend


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of the session cache's effectiveness counters."""

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int


class _LRUCache:
    """A small LRU keyed on hashable tuples, with hit/miss counters."""

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int):
        self.maxsize = max(maxsize, 1)
        self._data: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple) -> Optional[Any]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            maxsize=self.maxsize,
            evictions=self.evictions,
        )


@dataclass
class SessionStatistics:
    """Cross-call counters of one :class:`ConsistentDatabase` session."""

    queries: int = 0  #: reports served (cached or computed)
    mutations: int = 0  #: effective fact insertions/deletions
    tracker_rebuilds: int = 0  #: full violation sweeps (1 on first use; more only after out-of-band instance mutations)
    batches_rolled_back: int = 0


#: One journal entry of an open batch: ("insert"/"delete", fact, tracker delta).
_JournalEntry = Tuple[str, Fact, Optional[object]]


class ConsistentDatabase:
    """A stateful database session answering queries consistently.

    Constructed from an instance (or a schema, or a plain
    ``{"P": [rows]}`` mapping) plus a constraint set, with session-wide
    defaults for every CQA knob collected in a single
    :class:`repro.engines.CQAConfig`; each query call may override them
    by keyword.

    The session owns its instance: by default the constructor takes a
    copy-on-write copy, so later mutations never touch the caller's
    object (``copy=False`` opts out — the functional wrappers use it —
    in which case out-of-band mutations of the shared instance are
    detected through the generation counter and invalidate the caches,
    at the cost of a full tracker rebuild).
    """

    def __init__(
        self,
        source: Union[DatabaseInstance, DatabaseSchema, Mapping, None] = None,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]] = (),
        *,
        copy: bool = True,
        cache_size: int = 256,
        method: str = "auto",
        null_is_unknown: bool = False,
        max_states: Optional[int] = 200_000,
        repair_mode: str = "incremental",
        estimate_repairs: bool = True,
    ):
        if source is None:
            self._instance = DatabaseInstance()
        elif isinstance(source, DatabaseInstance):
            self._instance = source.copy() if copy else source
        elif isinstance(source, DatabaseSchema):
            self._instance = DatabaseInstance(schema=source.copy())
        elif isinstance(source, Mapping):
            self._instance = DatabaseInstance.from_dict(source)
        else:
            raise TypeError(
                "ConsistentDatabase expects a DatabaseInstance, DatabaseSchema "
                f"or mapping, not {type(source).__name__}"
            )
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._config = CQAConfig(
            method=method,
            null_is_unknown=null_is_unknown,
            max_states=max_states,
            repair_mode=repair_mode,
            estimate_repairs=estimate_repairs,
        )
        get_engine(self._config.method)  # fail fast on an unknown default
        #: Name-independent structural fingerprint of the constraint set —
        #: part of every query-cache key, so sessions over structurally
        #: different constraints can never share an entry even if a cache
        #: were shared between them.
        self._fingerprint: Tuple = tuple(
            constraint_structural_key(constraint) for constraint in self._constraints
        )
        self._violation_index = ViolationIndex(self._constraints)
        self._tracker: Optional[ViolationTracker] = None
        self._tracker_generation = -1
        self._cache = _LRUCache(cache_size)
        self._journal: Optional[List[_JournalEntry]] = None
        self._sql_backend: Optional["SQLiteBackend"] = None
        self._sql_backend_schema: Optional[DatabaseSchema] = None
        self._sql_backend_generation = -1
        self._constraint_relations: Optional[List[Tuple[str, int]]] = None
        self.statistics = SessionStatistics()
        #: Counters of the most recent repair search run by this session
        #: (``None`` until a repair-enumerating query executes uncached).
        self.last_repair_statistics: Optional[RepairStatistics] = None

    # ------------------------------------------------------------------ state
    @property
    def instance(self) -> DatabaseInstance:
        """The live instance — read-only; mutate through the session API."""

        return self._instance

    @property
    def constraints(self) -> ConstraintSet:
        """The integrity constraints the session enforces and repairs against."""

        return self._constraints

    @property
    def config(self) -> CQAConfig:
        """The session-wide CQA defaults (overridable per call)."""

        return self._config

    @property
    def generation(self) -> int:
        """The instance's mutation counter (the cache-invalidation key)."""

        return self._instance.generation

    def __len__(self) -> int:
        return len(self._instance)

    def __contains__(self, fact: object) -> bool:
        return fact in self._instance

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        """Iterate the instance's facts (optionally one predicate)."""

        return self._instance.facts(predicate)

    def snapshot(self) -> DatabaseInstance:
        """An independent copy-on-write copy of the current instance."""

        return self._instance.copy()

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size counters of the session's LRU cache."""

        return self._cache.info()

    def close(self) -> None:
        """Release held resources (the cached SQLite mirror) and the caches."""

        if self._sql_backend is not None:
            self._sql_backend.close()
            self._sql_backend = None
            self._sql_backend_schema = None
            self._sql_backend_generation = -1
        self._cache.clear()

    def __enter__(self) -> "ConsistentDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConsistentDatabase({len(self._instance)} facts, "
            f"{len(self._constraints)} constraints, method={self._config.method!r}, "
            f"generation={self.generation})"
        )

    # ------------------------------------------------------------------ violations
    def _ensure_tracker(self) -> ViolationTracker:
        """The warm violation tracker, (re)built only when missing or stale.

        Stale means the instance's generation moved without the session
        seeing the mutation — possible only with ``copy=False`` sharing.
        Every session-API mutation keeps the tracker exactly in sync, so
        steady-state sessions pay the full sweep once, ever.
        """

        if (
            self._tracker is None
            or self._tracker_generation != self._instance.generation
        ):
            self._tracker = ViolationTracker(self._instance, self._violation_index)
            self._tracker_generation = self._instance.generation
            self.statistics.tracker_rebuilds += 1
        return self._tracker

    def is_consistent(self) -> bool:
        """Does the current instance satisfy every constraint under ``|=_N``?"""

        return not self._ensure_tracker().has_violations()

    def violations(self) -> List[Violation]:
        """The current ground violations, maintained incrementally."""

        return self._ensure_tracker().violations()

    def violation_count(self) -> int:
        """Number of current ground violations."""

        return self._ensure_tracker().violation_count()

    # ------------------------------------------------------------------ mutation
    def _as_fact(
        self, fact_or_predicate: Union[Fact, str], values: Optional[Sequence[Constant]]
    ) -> Fact:
        if isinstance(fact_or_predicate, Fact):
            if values is not None:
                raise TypeError("pass either a Fact or (predicate, values), not both")
            return fact_or_predicate
        if values is None:
            raise TypeError("insert/delete with a predicate name needs values")
        return Fact(fact_or_predicate, values)

    def insert(
        self,
        fact_or_predicate: Union[Fact, str],
        values: Optional[Sequence[Constant]] = None,
    ) -> bool:
        """Insert one fact; returns True iff it was not already present.

        The warm tracker absorbs the change through one seeded
        per-constraint update; every generation-keyed cache entry is
        implicitly invalidated by the bumped counter.
        """

        fact = self._as_fact(fact_or_predicate, values)
        if fact in self._instance:
            return False
        tracker = self._live_tracker()
        self._instance.add(fact)
        delta = tracker.notify_added(fact) if tracker is not None else None
        self._record_mutation("insert", fact, delta)
        return True

    def delete(
        self,
        fact_or_predicate: Union[Fact, str],
        values: Optional[Sequence[Constant]] = None,
    ) -> bool:
        """Delete one fact; returns True iff it was present."""

        fact = self._as_fact(fact_or_predicate, values)
        if fact not in self._instance:
            return False
        tracker = self._live_tracker()
        self._instance.discard(fact)
        delta = tracker.notify_removed(fact) if tracker is not None else None
        self._record_mutation("delete", fact, delta)
        return True

    def bulk_load(
        self,
        data: Union[Mapping[str, Iterable[Sequence[Constant]]], Iterable[Fact]],
    ) -> int:
        """Insert many facts; returns how many were new.

        Accepts the ``{"P": [rows]}`` mapping shape of
        :meth:`DatabaseInstance.from_dict` or any iterable of
        :class:`Fact`.  Before the tracker's first build this is pure
        insertion (the sweep happens lazily, once, when a consumer first
        needs violations).
        """

        inserted = 0
        if isinstance(data, Mapping):
            for predicate, rows in data.items():
                for row in rows:
                    inserted += self.insert(Fact(predicate, row))
        else:
            for fact in data:
                inserted += self.insert(fact)
        return inserted

    def _live_tracker(self) -> Optional[ViolationTracker]:
        """The tracker if it exists and is in sync; drops it if stale."""

        if self._tracker is None:
            return None
        if self._tracker_generation != self._instance.generation:
            # The shared instance was mutated out-of-band: the store is
            # unusable, rebuild lazily on next demand.
            self._tracker = None
            self._tracker_generation = -1
            return None
        return self._tracker

    def _record_mutation(self, kind: str, fact: Fact, delta: Optional[object]) -> None:
        self._tracker_generation = self._instance.generation
        self.statistics.mutations += 1
        if self._journal is not None:
            self._journal.append((kind, fact, delta))

    @contextmanager
    def batch(self) -> Iterator["ConsistentDatabase"]:
        """Transactional mutation block: roll everything back on error.

        ::

            with db.batch():
                db.insert("Student", (34, "Zoe"))
                db.delete("Course", (21, "C15"))

        On an exception every mutation of the block is undone — instance
        and violation tracker both — and the exception propagates.  The
        generation counter still advances (it is monotone by contract),
        so caches are simply re-filled on the next query.  Batches do not
        nest.
        """

        if self._journal is not None:
            raise RuntimeError("ConsistentDatabase.batch() blocks cannot nest")
        journal: List[_JournalEntry] = []
        self._journal = journal
        try:
            yield self
        except BaseException:
            self._journal = None
            self._rollback(journal)
            raise
        else:
            self._journal = None

    def _rollback(self, journal: List[_JournalEntry]) -> None:
        # A journal entry without a tracker delta means the mutation
        # happened before the tracker existed.  If the tracker was then
        # built *mid-batch* (a query inside the block), its store already
        # includes those pre-tracker mutations and no delta can undo
        # them — the store is unrevertable, so discard it and let the
        # next consumer rebuild from the restored instance.
        revertable = self._tracker is not None and all(
            delta is not None for _, _, delta in journal
        )
        for kind, fact, delta in reversed(journal):
            if kind == "insert":
                self._instance.discard(fact)
            else:
                self._instance.add(fact)
            if revertable and delta is not None:
                self._tracker.revert(delta)
        if revertable:
            self._tracker_generation = self._instance.generation
        else:
            self._tracker = None
            self._tracker_generation = -1
        self.statistics.mutations -= len(journal)
        self.statistics.batches_rolled_back += 1

    # ------------------------------------------------------------------ queries
    def report(self, query: Query, **overrides: Any) -> CQAResult:
        """Consistent answers plus repair statistics (the full CQAResult).

        Keyword overrides are any :class:`CQAConfig` field, e.g.
        ``db.report(q, method="direct", repair_mode="naive")``.  Results
        are cached per (query, constraint fingerprint, generation,
        config), so an identical repeat is one dictionary probe.
        """

        config = self._config.merged(overrides)
        engine = get_engine(config.method)
        self.statistics.queries += 1
        key = (
            "answers",
            query,
            self._fingerprint,
            self._instance.generation,
            config.cache_key(),
        )
        cached = self._cache.get(key)
        if cached is not None:
            return self._result_copy(cached)
        result = engine.answers_report(self, query, config)
        self._cache.put(key, result)
        return self._result_copy(result)

    @staticmethod
    def _result_copy(result: CQAResult) -> CQAResult:
        """A shallow defensive copy so callers cannot corrupt the cache."""

        return replace(
            result, per_repair_answer_counts=list(result.per_repair_answer_counts)
        )

    def consistent_answers(
        self, query: Query, **overrides: Any
    ) -> FrozenSet[AnswerTuple]:
        """The consistent answers to *query* (Definition 8).

        Skips the rewriting path's repair-count estimate unless asked
        (``estimate_repairs=True``), exactly like the functional wrapper.
        """

        overrides.setdefault("estimate_repairs", False)
        return self.report(query, **overrides).answers

    def certain(
        self,
        query: Query,
        candidate: Optional[Sequence[Constant]] = None,
        **overrides: Any,
    ) -> bool:
        """Is *candidate* an answer in every repair?  (Boolean CQA.)

        With no candidate the query must be boolean and the result is the
        consistent yes/no answer; with a candidate tuple this is the
        decision version of CQA for open queries.
        """

        overrides.setdefault("estimate_repairs", False)
        result = self.report(query, **overrides)
        if candidate is not None:
            return tuple(candidate) in result.answers
        if result.repair_count == 0 and not result.repair_count_estimated:
            return False
        return result.certain

    def explain(self, query: Query, **overrides: Any) -> "CQAPlan":
        """The cost-based plan for *query* without executing anything."""

        config = self._config.merged(overrides)
        return self.plan(query, config)

    def iter_repairs(
        self, method: str = "direct", **overrides: Any
    ) -> Iterator[DatabaseInstance]:
        """Lazily iterate the repairs of the current instance.

        The enumeration itself runs on first advance (``≤_D``-minimality
        is a global filter, so candidates are materialised then) and is
        cached per generation; iteration yields copy-on-write copies, so
        callers may mutate what they receive.  *method* is ``"direct"``
        or ``"program"``.
        """

        if method not in ("direct", "program"):
            raise ValueError(
                f"iter_repairs() enumerates repairs; method must be 'direct' or "
                f"'program', not {method!r}"
            )
        config = self._config.merged(overrides)

        def generate() -> Iterator[DatabaseInstance]:
            for repair in self.repairs_list(method, config):
                yield repair.copy()

        return generate()

    def repair_count(self, method: str = "direct", **overrides: Any) -> int:
        """The exact number of repairs (enumerates them, cached)."""

        config = self._config.merged(overrides)
        return len(self.repairs_list(method, config))

    # ------------------------------------------------------------------ engine-facing cache surface
    def repairs_list(self, method: str, config: CQAConfig) -> List[DatabaseInstance]:
        """The repairs of the current instance, cached per generation.

        ``"direct"`` runs :class:`RepairEngine` — warm-started from the
        session's violation tracker in ``"incremental"`` repair mode, so
        no full violation sweep happens per query — and ``"program"``
        the stable-model route.  Engines and the repair iterator share
        this cache; treat the returned list and its instances as
        read-only.
        """

        generation = self._instance.generation
        if method == "direct":
            key = (
                "repairs",
                "direct",
                self._fingerprint,
                generation,
                config.repair_mode,
                config.max_states,
            )
        elif method == "program":
            key = ("repairs", "program", self._fingerprint, generation)
        else:
            raise ValueError(f"unknown repair enumeration method {method!r}")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if method == "direct":
            engine = RepairEngine(
                self._constraints,
                max_states=config.max_states,
                method=config.repair_mode,
                violation_index=self._violation_index,
            )
            seed = (
                self._ensure_tracker() if config.repair_mode == "incremental" else None
            )
            found = engine.repairs(self._instance, seed_tracker=seed)
            self.last_repair_statistics = engine.statistics
        else:
            from repro.core.repair_program import program_repairs

            found = program_repairs(self._instance, self._constraints).repairs
        self._cache.put(key, found)
        return found

    def rewritten(self, query: Query) -> "RewrittenQuery":
        """The first-order rewriting of *query*, cached per fingerprint.

        The rewriting depends only on (query, constraints) — never on the
        data — so this cache survives mutations.  Unsupported pairs are
        negatively cached: the analysis runs once and the same
        :class:`RewritingUnsupportedError` reason is re-raised instantly
        afterwards.
        """

        from repro.rewriting import RewritingUnsupportedError, rewrite_query

        key = ("rewrite", query, self._fingerprint)
        cached = self._cache.get(key)
        if cached is not None:
            if isinstance(cached, RewritingUnsupportedError):
                raise RewritingUnsupportedError(cached.reason)
            return cached
        try:
            result = rewrite_query(query, self._constraints)
        except RewritingUnsupportedError as error:
            self._cache.put(key, error)
            raise
        self._cache.put(key, result)
        return result

    def plan(self, query: Query, config: CQAConfig) -> "CQAPlan":
        """The cost-based :class:`CQAPlan` for *query*, cached per generation.

        A successful plan primes the rewriting cache with the rewritten
        query it carries, so ``explain()`` followed by a query pays the
        rewriting once.
        """

        key = ("plan", query, self._fingerprint, self._instance.generation, config.max_states)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.rewriting import plan_cqa

        plan = plan_cqa(
            self._instance, self._constraints, query, max_states=config.max_states
        )
        if plan.rewritten is not None:
            self._cache.put(("rewrite", query, self._fingerprint), plan.rewritten)
        self._cache.put(key, plan)
        return plan

    def conflict_graph(self) -> "ConflictGraph":
        """The instance's conflict graph, cached per generation."""

        key = ("conflicts", self._fingerprint, self._instance.generation)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.rewriting import ConflictGraph

        graph = ConflictGraph.build(self._instance, self._constraints)
        self._cache.put(key, graph)
        return graph

    def sql_backend(self, query: Optional[Query] = None) -> "SQLiteBackend":
        """An SQLite mirror of the current instance, rebuilt only on mutation.

        Held outside the LRU (a live connection should be closed, not
        silently evicted); :meth:`close` releases it.  The mirror is
        built over a copy-on-write copy of the instance whose schema is
        extended with any relation the constraints or *query* mention
        that the live schema never learned — an inferred schema only
        knows relations with at least one fact — so SQL evaluation
        agrees with the in-memory evaluators on empty relations instead
        of failing on a missing table, and the caller's schema is never
        mutated by a query.
        """

        needed = self._relations_needed(query)
        generation = self._instance.generation
        if (
            self._sql_backend is not None
            and self._sql_backend_generation == generation
            and all(
                predicate in self._sql_backend_schema for predicate, _ in needed
            )
        ):
            return self._sql_backend
        if self._sql_backend is not None:
            self._sql_backend.close()
        from repro.sqlbackend.backend import SQLiteBackend

        mirror = self._instance.copy()
        for predicate, arity in needed:
            if predicate not in mirror.schema:
                mirror.schema.relation_from_arity(predicate, arity)
        self._sql_backend = SQLiteBackend(mirror, self._constraints)
        self._sql_backend_schema = mirror.schema
        self._sql_backend_generation = generation
        return self._sql_backend

    def _relations_needed(self, query: Optional[Query]) -> List[Tuple[str, int]]:
        """(predicate, arity) pairs the SQL layer must have tables for."""

        from repro.constraints.ic import NotNullConstraint

        if self._constraint_relations is None:
            relations: List[Tuple[str, int]] = []
            for constraint in self._constraints:
                if isinstance(constraint, NotNullConstraint):
                    if constraint.arity is not None:
                        relations.append((constraint.predicate, constraint.arity))
                    continue
                for atom in (*constraint.body, *constraint.head_atoms):
                    relations.append((atom.predicate, atom.arity))
            self._constraint_relations = relations
        needed = list(self._constraint_relations)
        for atom in getattr(query, "positive_atoms", ()) or ():
            needed.append((atom.predicate, atom.arity))
        return needed
