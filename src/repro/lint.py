"""``python -m repro.lint`` — the static-analysis gate for constraint files.

Reads constraint programs (one constraint per line, ``#`` comments and
blank lines ignored, optional ``name:`` prefixes as accepted by
:func:`repro.constraints.parser.parse_constraints`), runs the full static
analyzer of :mod:`repro.analysis` and prints every diagnostic.  The exit
status makes it a pre-load admission gate::

    python -m repro.lint schema/constraints.cqa
    python -m repro.lint --query "ans(x) <- Emp(x, d)" schema/constraints.cqa
    python -m repro.lint --format json constraints.cqa   # machine-readable
    python -m repro.lint --codes                          # print the taxonomy

Exit codes: ``0`` — no error-severity diagnostics (warnings and infos
are reported but do not fail the gate); ``1`` — at least one ``E``-code
diagnostic (including parse/construction failures, reported as ``E100``
/ ``E103`` / ``E104``); ``2`` — usage errors (unreadable file, bad query).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import analyze
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    make_diagnostic,
)
from repro.constraints.ic import ConstraintError, ConstraintSet
from repro.constraints.parser import ParseError, parse_constraints, parse_query
from repro.logic.queries import Query


def _read_lines(path: str) -> List[Tuple[int, str]]:
    """The constraint lines of *path* with their 1-based line numbers."""

    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    lines: List[Tuple[int, str]] = []
    for number, line in enumerate(raw.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            lines.append((number, stripped))
    return lines


def _parse_file(path: str) -> Tuple[ConstraintSet, List[Diagnostic]]:
    """Parse *path* into a ConstraintSet, collecting failures as diagnostics.

    Parsing continues past a bad line so one typo does not hide every
    later finding; each failure becomes its attached diagnostic when the
    typed error carries one (``E103``/``E104``), else a generic ``E100``.
    """

    constraints = ConstraintSet()
    failures: List[Diagnostic] = []
    for number, line in _read_lines(path):
        try:
            parsed = parse_constraints([line])
        except (ParseError, ConstraintError) as error:
            attached = getattr(error, "diagnostic", None)
            if isinstance(attached, Diagnostic):
                failures.append(attached)
            else:
                failures.append(
                    make_diagnostic("E100", f"{path}:{number}: {error}", subject=line)
                )
            continue
        constraints.extend(parsed)
    return constraints, failures


def _diagnostic_json(diagnostic: Diagnostic) -> Dict[str, object]:
    return {
        "code": diagnostic.code,
        "slug": diagnostic.slug,
        "severity": diagnostic.severity.value,
        "message": diagnostic.message,
        "constraint": repr(diagnostic.constraint) if diagnostic.constraint else None,
        "subject": diagnostic.subject,
        "clause": diagnostic.clause,
        "details": dict(diagnostic.details),
    }


def _print_codes() -> None:
    print(f"{'code':<6} {'slug':<28} {'severity':<8} summary")
    for info in CODES.values():
        print(f"{info.code:<6} {info.slug:<28} {info.severity.value:<8} {info.summary}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="statically analyze constraint program files",
    )
    parser.add_argument("files", nargs="*", help="constraint files (one constraint per line)")
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="QUERY",
        help="also run the query-dependent checks (I301/I302) for QUERY; repeatable",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--codes", action="store_true", help="print the diagnostic code taxonomy and exit"
    )
    args = parser.parse_args(argv)

    if args.codes:
        _print_codes()
        return 0
    if not args.files:
        parser.print_usage()
        return 2

    queries: List[Query] = []
    for text in args.query:
        try:
            queries.append(parse_query(text))
        except ParseError as error:
            print(f"error: cannot parse query {text!r}: {error}", file=sys.stderr)
            return 2

    exit_status = 0
    for path in args.files:
        try:
            constraints, failures = _parse_file(path)
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        diagnostics: List[Diagnostic] = list(failures)
        diagnostics.extend(analyze(constraints))
        for query in queries:
            for diagnostic in analyze(constraints, query):
                if diagnostic not in diagnostics:
                    diagnostics.append(diagnostic)
        report = AnalysisReport(diagnostics=tuple(diagnostics))
        if report.has_errors:
            exit_status = 1
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "file": path,
                        "errors": len(report.errors),
                        "warnings": len(report.warnings),
                        "infos": len(report.infos),
                        "diagnostics": [_diagnostic_json(d) for d in report.diagnostics],
                    },
                    ensure_ascii=False,
                )
            )
        else:
            print(f"== {path}: {len(constraints)} constraint(s), {len(report)} diagnostic(s)")
            if report.diagnostics:
                print(report.render())
    return exit_status


if __name__ == "__main__":
    sys.exit(main())
