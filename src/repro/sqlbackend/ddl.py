"""DDL generation: schemas and constraint sets rendered as SQL.

The generated DDL is used in two ways: the examples print it so that a
reader can see what the constraint set means in familiar SQL terms, and
the SQL-compatibility experiment (E10) creates the tables with the native
constraints enabled and verifies that the repairs produced by the library
are accepted by SQLite — the paper's claim that its repairs "would be
accepted as consistent by current commercial implementations".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import is_null
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.constraints.atoms import Comparison
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable


def _quote_identifier(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _sql_literal(value: object) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _functional_dependency_key(constraint: IntegrityConstraint) -> Optional[Tuple[str, Tuple[int, ...]]]:
    """Recognise the key/FD shape produced by ``functional_dependency``.

    Returns (predicate, determinant positions) when the constraint is
    ``P(x̄), P(ȳ) → x_j = y_j`` with the determinant positions shared.
    """

    if len(constraint.body) != 2 or constraint.head_atoms or len(constraint.head_comparisons) != 1:
        return None
    first, second = constraint.body
    if first.predicate != second.predicate or first.arity != second.arity:
        return None
    shared_positions = tuple(
        index
        for index, (left, right) in enumerate(zip(first.terms, second.terms))
        if left == right and is_variable(left)
    )
    if not shared_positions:
        return None
    return first.predicate, shared_positions


def _check_expression(constraint: IntegrityConstraint, schema: DatabaseSchema) -> Optional[str]:
    """Render a single-row check constraint as a SQL CHECK expression."""

    if not constraint.is_check:
        return None
    atom = constraint.body[0]
    if atom.predicate not in schema:
        return None
    relation = schema.relation(atom.predicate)
    bindings: Dict[Variable, str] = {}
    for position, term in enumerate(atom.terms):
        if is_variable(term) and term not in bindings:
            bindings[term] = _quote_identifier(relation.attribute(position))
    parts: List[str] = []
    for comparison in constraint.head_comparisons:
        left = (
            bindings.get(comparison.left, _sql_literal(comparison.left))
            if is_variable(comparison.left)
            else _sql_literal(comparison.left)
        )
        right = (
            bindings.get(comparison.right, _sql_literal(comparison.right))
            if is_variable(comparison.right)
            else _sql_literal(comparison.right)
        )
        operator = "<>" if comparison.op == "!=" else comparison.op
        parts.append(f"{left} {operator} {right}")
    return " OR ".join(parts) if parts else None


def _foreign_key_clause(
    constraint: IntegrityConstraint, schema: DatabaseSchema
) -> Optional[Tuple[str, str]]:
    """Render a RIC as (child table, FOREIGN KEY clause) when both tables are known."""

    if not constraint.is_referential:
        return None
    child_atom = constraint.body[0]
    parent_atom = constraint.head_atoms[0]
    if child_atom.predicate not in schema or parent_atom.predicate not in schema:
        return None
    child = schema.relation(child_atom.predicate)
    parent = schema.relation(parent_atom.predicate)
    body_positions, head_positions = constraint.referenced_positions()
    child_columns = ", ".join(
        _quote_identifier(child.attribute(position)) for position in body_positions
    )
    parent_columns = ", ".join(
        _quote_identifier(parent.attribute(position)) for position in head_positions
    )
    clause = (
        f"FOREIGN KEY ({child_columns}) REFERENCES "
        f"{_quote_identifier(parent.name)} ({parent_columns})"
    )
    return child.name, clause


def create_table_statements(
    schema: DatabaseSchema,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint], None] = None,
    enforce_constraints: bool = True,
) -> List[str]:
    """``CREATE TABLE`` statements for *schema*, optionally with native constraints.

    Keys (recognised from the FD shape), foreign keys (from RICs), NOT NULL
    and single-row CHECK constraints are emitted natively when
    *enforce_constraints* is true; everything else is left to the library's
    own semantics layer.
    """

    constraint_set: ConstraintSet
    if constraints is None:
        constraint_set = ConstraintSet()
    elif isinstance(constraints, ConstraintSet):
        constraint_set = constraints
    else:
        constraint_set = ConstraintSet(list(constraints))

    not_null_positions: Dict[str, Set[int]] = {}
    unique_keys: Dict[str, Set[Tuple[int, ...]]] = {}
    checks: Dict[str, List[str]] = {}
    foreign_keys: Dict[str, List[str]] = {}

    if enforce_constraints:
        for constraint in constraint_set:
            if isinstance(constraint, NotNullConstraint):
                not_null_positions.setdefault(constraint.predicate, set()).add(
                    constraint.position
                )
                continue
            fd_key = _functional_dependency_key(constraint)
            if fd_key is not None:
                predicate, determinant = fd_key
                unique_keys.setdefault(predicate, set()).add(determinant)
                continue
            check = _check_expression(constraint, schema)
            if check is not None:
                checks.setdefault(constraint.body[0].predicate, []).append(check)
                continue
            fk = _foreign_key_clause(constraint, schema)
            if fk is not None:
                table, clause = fk
                foreign_keys.setdefault(table, []).append(clause)
                # SQL engines require the referenced columns to carry a
                # PRIMARY KEY or UNIQUE constraint (the paper's foreign keys
                # always reference a key, cf. Example 19); declare it so the
                # native foreign key is accepted by SQLite.
                parent_atom = constraint.head_atoms[0]
                if parent_atom.predicate in schema:
                    _, head_positions = constraint.referenced_positions()
                    unique_keys.setdefault(parent_atom.predicate, set()).add(
                        tuple(sorted(head_positions))
                    )

    statements: List[str] = []
    for relation in schema.relations():
        column_lines: List[str] = []
        nn = not_null_positions.get(relation.name, set())
        for position, attribute in enumerate(relation.attributes):
            suffix = " NOT NULL" if position in nn else ""
            column_lines.append(f"  {_quote_identifier(attribute)}{suffix}")
        table_constraints: List[str] = []
        for determinant in sorted(unique_keys.get(relation.name, set())):
            columns = ", ".join(
                _quote_identifier(relation.attribute(position)) for position in determinant
            )
            table_constraints.append(f"  UNIQUE ({columns})")
        for check in checks.get(relation.name, []):
            table_constraints.append(f"  CHECK ({check})")
        for clause in foreign_keys.get(relation.name, []):
            table_constraints.append(f"  {clause}")
        body = ",\n".join(column_lines + table_constraints)
        statements.append(
            f"CREATE TABLE {_quote_identifier(relation.name)} (\n{body}\n);"
        )
    return statements


def insert_statements(instance: DatabaseInstance) -> List[str]:
    """``INSERT`` statements materialising *instance*."""

    statements: List[str] = []
    for fact in instance.facts():
        values = ", ".join(_sql_literal(value) for value in fact.values)
        statements.append(
            f"INSERT INTO {_quote_identifier(fact.predicate)} VALUES ({values});"
        )
    return statements
