"""SQLite-backed consistency checking and query evaluation.

The backend serves three purposes:

1. **Violation SQL** — :func:`violation_sql` compiles a constraint into a
   ``SELECT`` that returns one row per ground violation under the paper's
   null-aware semantics ``|=_N``; :meth:`SQLiteBackend.is_consistent`
   checks that every such query is empty.  This demonstrates that the
   semantics of Definition 4 is implementable by query rewriting on a
   stock SQL engine (the sqlglot/sqlalchemy-style rewriting the
   reproduction plan calls for, written by hand against the stdlib).
2. **Native acceptance** — :meth:`SQLiteBackend.accepts_natively` loads the
   instance into tables created with native PRIMARY KEY / FOREIGN KEY /
   CHECK / NOT NULL clauses and reports whether the engine accepts it,
   reproducing the DB2 behaviour discussed in Examples 5–7 and the claim
   that the paper's repairs are accepted by commercial implementations.
3. **Query evaluation** — conjunctive queries are compiled to SQL and
   evaluated by SQLite, cross-validating the in-memory evaluator.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, NULL, is_null
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.constraints.atoms import Atom, Comparison
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core.relevant import relevant_body_variables, relevant_positions
from repro.logic.queries import ConjunctiveQuery
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience import budget as _budget
from repro.sqlbackend.ddl import create_table_statements, insert_statements


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _literal(value: object) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _operator(op: str) -> str:
    return "<>" if op == "!=" else op


class SQLGenerationError(ValueError):
    """Raised when a constraint or query cannot be rendered as SQL."""


# --------------------------------------------------------------------------- violation SQL
def violation_sql(
    constraint: AnyConstraint, schema: DatabaseSchema
) -> str:
    """A ``SELECT`` returning one row per violation of *constraint* under ``|=_N``."""

    if isinstance(constraint, NotNullConstraint):
        relation = schema.relation(constraint.predicate)
        column = _quote(relation.attribute(constraint.position))
        return (
            f"SELECT * FROM {_quote(relation.name)} WHERE {column} IS NULL"
        )
    return _ic_violation_sql(constraint, schema)


def _column(schema: DatabaseSchema, predicate: str, position: int, alias: str) -> str:
    attribute = schema.relation(predicate).attribute(position)
    return f"{alias}.{_quote(attribute)}"


def _ic_violation_sql(constraint: IntegrityConstraint, schema: DatabaseSchema) -> str:
    positions = relevant_positions(constraint)
    relevant_vars = relevant_body_variables(constraint)

    from_parts: List[str] = []
    conditions: List[str] = []
    variable_columns: Dict[Variable, str] = {}

    for index, atom in enumerate(constraint.body):
        alias = f"t{index}"
        from_parts.append(f"{_quote(atom.predicate)} AS {alias}")
        for position, term in enumerate(atom.terms):
            column = _column(schema, atom.predicate, position, alias)
            if is_variable(term):
                bound = variable_columns.get(term)
                if bound is None:
                    variable_columns[term] = column
                else:
                    conditions.append(f"{column} = {bound}")
            else:
                conditions.append(f"{column} = {_literal(term)}")

    for variable in sorted(relevant_vars, key=lambda v: v.name):
        conditions.append(f"{variable_columns[variable]} IS NOT NULL")

    for atom in constraint.head_atoms:
        conditions.append(
            "NOT EXISTS (" + _witness_subquery(constraint, atom, schema, positions, variable_columns) + ")"
        )

    if constraint.head_comparisons:
        comparison_parts = []
        for comparison in constraint.head_comparisons:
            left = (
                variable_columns[comparison.left]
                if is_variable(comparison.left)
                else _literal(comparison.left)
            )
            right = (
                variable_columns[comparison.right]
                if is_variable(comparison.right)
                else _literal(comparison.right)
            )
            comparison_parts.append(f"{left} {_operator(comparison.op)} {right}")
        conditions.append("NOT (" + " OR ".join(comparison_parts) + ")")

    where = " AND ".join(conditions) if conditions else "1 = 1"
    return f"SELECT * FROM {', '.join(from_parts)} WHERE {where}"


def _witness_subquery(
    constraint: IntegrityConstraint,
    atom: Atom,
    schema: DatabaseSchema,
    positions: Mapping[str, Tuple[int, ...]],
    variable_columns: Mapping[Variable, str],
) -> str:
    alias = "w"
    kept = positions.get(atom.predicate, tuple(range(atom.arity)))
    body_vars = constraint.body_variables()
    conditions: List[str] = []
    existential_first: Dict[Variable, str] = {}
    for position in kept:
        term = atom.terms[position]
        column = _column(schema, atom.predicate, position, alias)
        if is_variable(term):
            if term in body_vars:
                conditions.append(f"{column} = {variable_columns[term]}")
            else:
                first = existential_first.get(term)
                if first is None:
                    existential_first[term] = column
                else:
                    # Repeated existential variable: the witness columns must
                    # agree; null agrees with null under |=_N (Example 13).
                    conditions.append(
                        f"({column} = {first} OR ({column} IS NULL AND {first} IS NULL))"
                    )
        else:
            conditions.append(f"{column} = {_literal(term)}")
    where = " AND ".join(conditions) if conditions else "1 = 1"
    return f"SELECT 1 FROM {_quote(atom.predicate)} AS {alias} WHERE {where}"


# --------------------------------------------------------------------------- query SQL
def conjunctive_query_sql(query: ConjunctiveQuery, schema: DatabaseSchema) -> str:
    """Compile a conjunctive query (with negation and comparisons) to SQL."""

    from_parts: List[str] = []
    conditions: List[str] = []
    variable_columns: Dict[Variable, str] = {}

    for index, atom in enumerate(query.positive_atoms):
        alias = f"t{index}"
        from_parts.append(f"{_quote(atom.predicate)} AS {alias}")
        for position, term in enumerate(atom.terms):
            column = _column(schema, atom.predicate, position, alias)
            if is_variable(term):
                bound = variable_columns.get(term)
                if bound is None:
                    variable_columns[term] = column
                else:
                    conditions.append(f"{column} = {bound}")
            else:
                conditions.append(f"{column} = {_literal(term)}")

    for negated_index, atom in enumerate(query.negative_atoms):
        alias = f"n{negated_index}"
        sub_conditions: List[str] = []
        for position, term in enumerate(atom.terms):
            column = _column(schema, atom.predicate, position, alias)
            if is_variable(term):
                sub_conditions.append(f"{column} = {variable_columns[term]}")
            else:
                sub_conditions.append(f"{column} = {_literal(term)}")
        where = " AND ".join(sub_conditions) if sub_conditions else "1 = 1"
        conditions.append(
            f"NOT EXISTS (SELECT 1 FROM {_quote(atom.predicate)} AS {alias} WHERE {where})"
        )

    for comparison in query.comparisons:
        left = (
            variable_columns[comparison.left]
            if is_variable(comparison.left)
            else _literal(comparison.left)
        )
        right = (
            variable_columns[comparison.right]
            if is_variable(comparison.right)
            else _literal(comparison.right)
        )
        conditions.append(f"{left} {_operator(comparison.op)} {right}")

    if query.head_variables:
        select = ", ".join(variable_columns[v] for v in query.head_variables)
    else:
        select = "1"
    where = " AND ".join(conditions) if conditions else "1 = 1"
    return f"SELECT DISTINCT {select} FROM {', '.join(from_parts)} WHERE {where}"


# --------------------------------------------------------------------------- backend
class SQLiteBackend:
    """An in-memory SQLite database mirroring a :class:`DatabaseInstance`."""

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint], None] = None,
    ):
        self._instance = instance
        if constraints is None:
            self._constraints = ConstraintSet()
        elif isinstance(constraints, ConstraintSet):
            self._constraints = constraints
        else:
            self._constraints = ConstraintSet(list(constraints))
        self._connection = sqlite3.connect(":memory:")
        self._load(enforce=False)

    # ------------------------------------------------------------------ loading
    def _load(self, enforce: bool) -> None:
        cursor = self._connection.cursor()
        for statement in create_table_statements(
            self._instance.schema, self._constraints, enforce_constraints=enforce
        ):
            cursor.execute(statement)
        for fact in self._instance.facts():
            placeholders = ", ".join("?" for _ in fact.values)
            values = tuple(None if is_null(v) else v for v in fact.values)
            cursor.execute(
                f"INSERT INTO {_quote(fact.predicate)} VALUES ({placeholders})", values
            )
        self._connection.commit()

    def close(self) -> None:
        """Close the underlying connection."""

        self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ queries
    def execute(self, sql: str) -> List[Tuple[object, ...]]:
        """Run raw SQL and fetch all rows (the single statement funnel).

        When an ambient request budget is active
        (:func:`repro.resilience.budget.active`), a SQLite progress
        handler polls it every few thousand VM instructions and aborts
        the statement on exhaustion — real mid-statement cancellation,
        surfaced as the budget's typed
        :class:`~repro.errors.BudgetExceededError` instead of SQLite's
        ``OperationalError: interrupted``.
        """

        _metrics.counter(
            "repro_sql_statements_total", "SQL statements executed on the mirror"
        ).inc()
        budget = _budget.active()
        if budget:
            self._connection.set_progress_handler(
                lambda: 1 if budget.exhausted() else 0, 4000
            )
        try:
            with _trace.span("sql.execute") as sp:
                cursor = self._connection.cursor()
                try:
                    rows = list(cursor.execute(sql).fetchall())
                except sqlite3.OperationalError as error:
                    if budget and "interrupt" in str(error).lower():
                        raise budget.error() from error
                    raise
                if sp:
                    sp.add(sql=sql[:200], rows=len(rows))
        finally:
            if budget:
                self._connection.set_progress_handler(None, 0)
        return rows

    def violations(self, constraint: AnyConstraint) -> List[Tuple[object, ...]]:
        """Rows witnessing violations of *constraint* under ``|=_N``."""

        return self.execute(violation_sql(constraint, self._instance.schema))

    def is_consistent(self) -> bool:
        """True iff no constraint has a violation according to the SQL rewriting."""

        return all(not self.violations(constraint) for constraint in self._constraints)

    def answers(self, query: ConjunctiveQuery) -> FrozenSet[Tuple[Constant, ...]]:
        """Evaluate a conjunctive query through SQL (nulls are returned as ``NULL``)."""

        rows = self.execute(conjunctive_query_sql(query, self._instance.schema))
        if query.is_boolean:
            return frozenset({()} if rows else set())
        return frozenset(
            tuple(NULL if value is None else value for value in row) for row in rows
        )

    def consistent_answers(
        self,
        query: ConjunctiveQuery,
        rewritten=None,
        null_is_unknown: bool = True,
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Consistent answers via the first-order rewriting, entirely in SQLite.

        Rewrites *query* against the backend's constraint set
        (:func:`repro.rewriting.rewrite_query`), compiles the rewriting to
        one ``SELECT`` and runs it on the loaded tables: no repair is ever
        materialised.  Raises
        :class:`repro.rewriting.RewritingUnsupportedError` when the
        constraints or the query fall outside the tractable fragment.
        A caller holding the rewriting already (the ``"sqlite"`` engine
        serves it from the session cache) passes it as *rewritten* to
        skip the re-analysis; *null_is_unknown* picks the null convention
        for the base query's comparisons (the default keeps SQL's native
        three-valued behaviour).
        """

        if rewritten is None:
            from repro.rewriting import rewrite_query

            rewritten = rewrite_query(query, self._constraints)
        rows = self.execute(
            rewritten.to_sql(self._instance.schema, null_is_unknown=null_is_unknown)
        )
        if query.is_boolean:
            return frozenset({()} if rows else set())
        return frozenset(
            tuple(NULL if value is None else value for value in row) for row in rows
        )

    # ------------------------------------------------------------------ native acceptance
    def accepts_natively(self) -> bool:
        """Would SQLite accept the instance with native constraint enforcement?

        Recreates the tables with PRIMARY KEY / UNIQUE, FOREIGN KEY, CHECK
        and NOT NULL clauses derived from the constraint set, turns on
        foreign-key enforcement, and attempts to insert every row.  Returns
        False on the first rejected insert.
        """

        connection = sqlite3.connect(":memory:")
        try:
            cursor = connection.cursor()
            cursor.execute("PRAGMA foreign_keys = ON")
            for statement in create_table_statements(
                self._instance.schema, self._constraints, enforce_constraints=True
            ):
                cursor.execute(statement)
            # Parents before children so that foreign keys can be satisfied.
            ordered = self._parents_first_order()
            for predicate in ordered:
                for values in sorted(self._instance.tuples(predicate), key=repr):
                    placeholders = ", ".join("?" for _ in values)
                    row = tuple(None if is_null(v) else v for v in values)
                    try:
                        cursor.execute(
                            f"INSERT INTO {_quote(predicate)} VALUES ({placeholders})",
                            row,
                        )
                    except sqlite3.IntegrityError:
                        return False
            connection.commit()
            return True
        finally:
            connection.close()


    def _parents_first_order(self) -> List[str]:
        """Order relations so that referenced relations are inserted first."""

        referenced_by: Dict[str, Set[str]] = {}
        for constraint in self._constraints:
            if isinstance(constraint, IntegrityConstraint) and constraint.is_referential:
                child = constraint.body[0].predicate
                parent = constraint.head_atoms[0].predicate
                referenced_by.setdefault(child, set()).add(parent)
        ordered: List[str] = []
        remaining = list(self._instance.schema.relation_names)
        while remaining:
            progressed = False
            for name in list(remaining):
                parents = referenced_by.get(name, set())
                if all(parent in ordered or parent not in remaining for parent in parents):
                    ordered.append(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:  # a referential cycle: append the rest as-is
                ordered.extend(remaining)
                break
        return ordered
