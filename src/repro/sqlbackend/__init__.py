"""SQL backend: SQLite as the stand-in for a commercial DBMS.

The paper repeatedly compares its semantics with the behaviour of
commercial database systems (IBM DB2 in Examples 5–7): nulls in attributes
that are not relevant to a constraint never cause rejections, foreign keys
follow the SQL simple-match rule, check constraints accept rows whose
condition evaluates to *unknown*.  This package reproduces that comparison
infrastructure on top of the standard library's ``sqlite3``:

* :mod:`repro.sqlbackend.ddl` generates ``CREATE TABLE`` statements with
  native PRIMARY KEY / FOREIGN KEY / CHECK / NOT NULL clauses from a
  schema and a constraint set;
* :mod:`repro.sqlbackend.backend` loads instances into an in-memory
  SQLite database, generates violation-detection SQL that implements the
  paper's ``|=_N`` semantics, evaluates conjunctive queries in SQL, and
  checks whether an instance would be accepted by the native constraint
  enforcement of the engine.
"""

from repro.sqlbackend.ddl import create_table_statements, insert_statements
from repro.sqlbackend.backend import SQLiteBackend, violation_sql

__all__ = [
    "SQLiteBackend",
    "violation_sql",
    "create_table_statements",
    "insert_statements",
]
