"""Relevant attributes ``A(ψ)`` of a constraint (Definition 2).

For a constraint ``ψ`` of form (1), the relevant attributes are the
positions ``R[i]`` of database predicates where

* a variable occurs that appears *at least twice* in ``ψ`` (counting every
  occurrence in antecedent atoms, consequent atoms and built-ins), or
* a constant occurs.

Intuitively these are the attributes involved in joins, the attributes
shared between antecedent and consequent, and the attributes constrained
by ``ϕ`` — precisely the attributes a commercial DBMS would look at when
checking the constraint (Examples 5, 6, 8, 9).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.constraints.atoms import Atom
from repro.constraints.ic import IntegrityConstraint, NotNullConstraint
from repro.constraints.terms import Variable, is_variable


#: A relevant attribute: (predicate name, occurrence index, 0-based position).
#: ``occurrence index`` distinguishes repeated uses of the same predicate in
#: one constraint (e.g. ``P(x, y), P(y, z) → …``); Definition 2 is stated per
#: predicate, so :func:`relevant_attributes` collapses occurrences, while
#: :func:`relevant_positions` keeps the per-predicate union that Definition 3
#: projects on.
AttributeRef = Tuple[str, int]


def _variable_occurrences(constraint: IntegrityConstraint) -> Counter:
    """Count every occurrence of every variable in the constraint."""

    counts: Counter = Counter()
    for atom in constraint.body + constraint.head_atoms:
        for term in atom.terms:
            if is_variable(term):
                counts[term] += 1
    for comparison in constraint.head_comparisons:
        for term in (comparison.left, comparison.right):
            if is_variable(term):
                counts[term] += 1
    return counts


def relevant_attributes(constraint: IntegrityConstraint) -> FrozenSet[AttributeRef]:
    """The set ``A(ψ)`` as (predicate, 0-based position) pairs.

    NOT-NULL constraints are handled separately (Definition 5) and should
    not be passed here.
    """

    if isinstance(constraint, NotNullConstraint):  # defensive: misuse guard
        raise TypeError("relevant_attributes applies to constraints of form (1), not NNCs")
    counts = _variable_occurrences(constraint)
    repeated: Set[Variable] = {v for v, count in counts.items() if count >= 2}
    result: Set[AttributeRef] = set()
    for atom in constraint.body + constraint.head_atoms:
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                if term in repeated:
                    result.add((atom.predicate, position))
            else:
                # A constant occurrence always makes its position relevant.
                result.add((atom.predicate, position))
    return frozenset(result)


def relevant_positions(constraint: IntegrityConstraint) -> Dict[str, Tuple[int, ...]]:
    """Relevant positions grouped per predicate, sorted ascending.

    This is the per-relation view Definition 3 projects on; a predicate
    mentioned by the constraint but with no relevant position maps to an
    empty tuple (its projection is a 0-ary relation that is non-empty iff
    the original relation is).
    """

    relevant = relevant_attributes(constraint)
    grouped: Dict[str, Set[int]] = {
        atom.predicate: set() for atom in constraint.body + constraint.head_atoms
    }
    for predicate, position in relevant:
        grouped.setdefault(predicate, set()).add(position)
    return {predicate: tuple(sorted(positions)) for predicate, positions in grouped.items()}


def relevant_body_variables(constraint: IntegrityConstraint) -> FrozenSet[Variable]:
    """``A(ψ) ∩ x̄``: antecedent variables sitting at relevant positions.

    These are exactly the variables the ``IsNull`` disjunction of the
    rewritten constraint (formula (4)) ranges over: if any of them is bound
    to ``null`` the constraint is satisfied for that assignment.
    """

    relevant = relevant_attributes(constraint)
    result: Set[Variable] = set()
    for atom in constraint.body:
        for position, term in enumerate(atom.terms):
            if is_variable(term) and (atom.predicate, position) in relevant:
                result.add(term)
    return frozenset(result)


def relevant_existential_variables(constraint: IntegrityConstraint) -> FrozenSet[Variable]:
    """Existential variables that occupy a relevant position of some consequent atom.

    The paper notes (after Example 12) that ``ψ_N`` only keeps existential
    quantifiers when some consequent atom repeats an existential variable —
    that is the only way an existential variable can become relevant.
    """

    relevant = relevant_attributes(constraint)
    existential = constraint.existential_variables()
    result: Set[Variable] = set()
    for atom in constraint.head_atoms:
        for position, term in enumerate(atom.terms):
            if (
                is_variable(term)
                and term in existential
                and (atom.predicate, position) in relevant
            ):
                result.add(term)
    return frozenset(result)


def paper_attribute_names(
    constraint: IntegrityConstraint,
) -> FrozenSet[str]:
    """``A(ψ)`` rendered in the paper's ``R[i]`` (1-based) notation, for reports."""

    return frozenset(
        f"{predicate}[{position + 1}]"
        for predicate, position in relevant_attributes(constraint)
    )
