"""The classical repair semantics of Arenas–Bertossi–Chomicki 1999 (baseline).

Under the classical semantics a repair minimises the symmetric difference
``∆(D, D')`` under set inclusion, ``null`` has no special status, and a
violated referential constraint can be repaired either by deleting the
offending tuple or by inserting a witness whose existential attributes take
*arbitrary* values from the (possibly infinite) database domain.  As the
paper's Example 14 shows, that yields one repair per domain constant — and
with cyclic referential constraints CQA becomes undecidable [Calì et al.
2003].

This module implements the baseline so that the benchmarks can reproduce
the qualitative blow-up: repairs are enumerated with insertions drawn from
a *finite* candidate domain supplied by the caller (by default the active
domain plus the constraint constants), and the repair count is reported as
a function of that domain's size.  A deletion-only mode covers the
Chomicki–Marcinkowski tuple-deletion semantics used for denial constraints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, NULL, is_null
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core.repairs import violation_choice_key
from repro.core.satisfaction import Violation
from repro.core.semantics import Semantics, violations_under


class ClassicRepairBudgetExceeded(RuntimeError):
    """Raised when the classical enumeration exceeds its state budget."""


def _all_violations_classical(
    instance: DatabaseInstance, constraints: ConstraintSet
) -> List[Violation]:
    found: List[Violation] = []
    for constraint in constraints:
        found.extend(violations_under(instance, constraint, Semantics.CLASSICAL))
    return found


def _classical_insertions(
    violation: Violation, domain: Sequence[Constant]
) -> List[Fact]:
    """Insertion fixes with existential positions ranging over *domain*."""

    constraint = violation.constraint
    if isinstance(constraint, NotNullConstraint):
        return []
    assignment = violation.assignment
    fixes: List[Fact] = []
    for atom in constraint.head_atoms:
        existential_positions = [
            index
            for index, term in enumerate(atom.terms)
            if is_variable(term) and term not in assignment
        ]
        # Group positions by the existential variable so repeated variables
        # receive the same value.
        exist_vars: List[Variable] = []
        for index in existential_positions:
            term = atom.terms[index]
            if term not in exist_vars:
                exist_vars.append(term)
        if not exist_vars:
            values = [
                assignment.get(term, term) if is_variable(term) else term
                for term in atom.terms
            ]
            fixes.append(Fact(atom.predicate, values))
            continue
        for combination in _combinations(domain, len(exist_vars)):
            binding = dict(zip(exist_vars, combination))
            values = []
            for term in atom.terms:
                if is_variable(term):
                    values.append(assignment.get(term, binding.get(term)))
                else:
                    values.append(term)
            fixes.append(Fact(atom.predicate, values))
    return fixes


def _combinations(domain: Sequence[Constant], count: int) -> Iterable[Tuple[Constant, ...]]:
    if count == 0:
        yield ()
        return
    for value in domain:
        for rest in _combinations(domain, count - 1):
            yield (value,) + rest


def classic_repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    insertion_domain: Optional[Sequence[Constant]] = None,
    deletions_only: bool = False,
    max_states: Optional[int] = 200_000,
) -> List[DatabaseInstance]:
    """Repairs under the classical (1999) semantics, restricted to a finite domain.

    Parameters
    ----------
    insertion_domain:
        The constants insertions may use for existentially quantified
        attributes.  Defaults to ``adom(D) ∪ const(IC)`` (without ``null``:
        the classical semantics predates null-based repairs).
    deletions_only:
        Restrict the repairs to tuple deletions (the semantics used for
        denial constraints and keys in most of the CQA literature).
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    if insertion_domain is None:
        insertion_domain = sorted(
            set(instance.active_domain()) | set(constraint_set.constants()),
            key=lambda value: repr(value),
        )

    states_explored = 0
    found: Dict[FrozenSet[Fact], DatabaseInstance] = {}
    visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()

    def explore(
        current: DatabaseInstance,
        inserted: FrozenSet[Fact],
        deleted: FrozenSet[Fact],
    ) -> None:
        nonlocal states_explored
        state_key = (inserted, deleted)
        if state_key in visited:
            return
        visited.add(state_key)
        states_explored += 1
        if max_states is not None and states_explored > max_states:
            raise ClassicRepairBudgetExceeded(
                f"classical repair search exceeded {max_states} states"
            )
        violations = _all_violations_classical(current, constraint_set)
        if not violations:
            key = current.fact_set()
            if key not in found:
                found[key] = current.copy()
            return
        violation = min(violations, key=violation_choice_key)
        for fact in dict.fromkeys(violation.body_facts):
            if fact in inserted:
                continue
            next_instance = current.copy()
            next_instance.discard(fact)
            explore(next_instance, inserted, deleted | {fact})
        if deletions_only:
            return
        for fact in _classical_insertions(violation, insertion_domain):
            if fact in deleted or fact in current:
                continue
            next_instance = current.copy()
            next_instance.add(fact)
            explore(next_instance, inserted | {fact}, deleted)

    explore(instance.copy(), frozenset(), frozenset())

    # Minimality: subset-minimal symmetric difference.
    candidates = list(found.values())
    minimal: List[DatabaseInstance] = []
    for candidate in candidates:
        candidate_delta = instance.symmetric_difference(candidate)
        dominated = any(
            other is not candidate
            and instance.symmetric_difference(other) < candidate_delta
            for other in candidates
        )
        if not dominated:
            minimal.append(candidate)
    return minimal


def classic_repair_count_by_domain_size(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    domain_sizes: Sequence[int],
    value_prefix: str = "v",
) -> Dict[int, int]:
    """Number of classical repairs as the insertion domain grows (Example 14).

    For each requested size ``n`` the insertion domain is the active domain
    plus fresh constants ``v1 … vk`` until it has ``n`` elements; the
    result maps ``n`` to the number of repairs, which grows linearly for
    the Course/Student example while the null-based semantics stays at two.
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    base = sorted(
        set(instance.active_domain()) | set(constraint_set.constants()),
        key=lambda value: repr(value),
    )
    counts: Dict[int, int] = {}
    for size in domain_sizes:
        domain = list(base)
        index = 1
        while len(domain) < size:
            fresh = f"{value_prefix}{index}"
            if fresh not in domain:
                domain.append(fresh)
            index += 1
        counts[size] = len(
            classic_repairs(instance, constraint_set, insertion_domain=domain[:size])
        )
    return counts
