"""Bilateral predicates and the head-cycle-free guarantee (Section 6).

A predicate is *bilateral* w.r.t. a constraint set ``IC`` when it appears
in the antecedent of some constraint and in the consequent of some (not
necessarily different) constraint (Definition 11).  Theorem 5 gives a
sufficient, syntactic condition under which the repair program
``Π(D, IC)`` is head-cycle-free for every instance ``D``: every constraint
either mentions no bilateral predicate, or mentions exactly one occurrence
of a bilateral predicate.  Corollary 1 specialises this to denial-style
constraints (no database atom in the consequent), which never have
bilateral occurrences and therefore always yield HCF — hence coNP —
programs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union

from repro.relational.instance import DatabaseInstance
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)


def _as_constraint_set(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> ConstraintSet:
    if isinstance(constraints, ConstraintSet):
        return constraints
    return ConstraintSet(list(constraints))


def bilateral_predicates(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> FrozenSet[str]:
    """Predicates appearing in some antecedent and in some consequent (Definition 11)."""

    constraint_set = _as_constraint_set(constraints)
    antecedent: Set[str] = set()
    consequent: Set[str] = set()
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            antecedent.add(constraint.predicate)
            continue
        antecedent |= set(constraint.body_predicates())
        consequent |= set(constraint.head_predicates())
    return frozenset(antecedent & consequent)


def bilateral_occurrences(
    constraint: IntegrityConstraint, bilateral: FrozenSet[str]
) -> int:
    """Number of atom occurrences of bilateral predicates in *constraint*."""

    return sum(
        1
        for atom in constraint.body + constraint.head_atoms
        if atom.predicate in bilateral
    )


def guarantees_hcf(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> bool:
    """Theorem 5's sufficient condition for the repair program to be HCF.

    Every constraint of form (1) must contain either no occurrence or
    exactly one occurrence of a bilateral predicate.  The condition is
    sufficient but not necessary (the paper gives ``P(x, a) → P(x, b)`` as
    a constraint violating the condition whose program is nevertheless
    HCF); use :func:`repair_program_is_hcf` for an instance-specific,
    exact check on the ground program.
    """

    constraint_set = _as_constraint_set(constraints)
    bilateral = bilateral_predicates(constraint_set)
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            continue
        if bilateral_occurrences(constraint, bilateral) > 1:
            return False
    return True


def is_denial_only(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> bool:
    """Corollary 1's constraint class: no database atoms in any consequent."""

    constraint_set = _as_constraint_set(constraints)
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            continue
        if constraint.head_atoms:
            return False
    return True


def repair_program_is_hcf(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> bool:
    """Exact HCF check on the ground repair program for a concrete instance."""

    from repro.asp.shift import is_head_cycle_free
    from repro.core.repair_program import build_repair_program

    program = build_repair_program(instance, _as_constraint_set(constraints))
    return is_head_cycle_free(program)


def hcf_report(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> Dict[str, object]:
    """A small structured report used by the benchmarks and examples."""

    constraint_set = _as_constraint_set(constraints)
    bilateral = bilateral_predicates(constraint_set)
    per_constraint: List[Tuple[str, int]] = []
    for index, constraint in enumerate(constraint_set):
        if isinstance(constraint, NotNullConstraint):
            continue
        name = constraint.name or f"ic{index + 1}"
        per_constraint.append((name, bilateral_occurrences(constraint, bilateral)))
    return {
        "bilateral_predicates": sorted(bilateral),
        "occurrences_per_constraint": per_constraint,
        "guarantees_hcf": guarantees_hcf(constraint_set),
        "denial_only": is_denial_only(constraint_set),
    }
