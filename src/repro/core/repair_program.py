"""Repair logic programs Π(D, IC) (Definition 9) and their stable models.

The program uses annotation constants in an extra, last argument of each
database predicate:

========  =====================  =========================================
constant  atom                   meaning
========  =====================  =========================================
``ta``    ``P(ā, ta)``           advised to be made true
``fa``    ``P(ā, fa)``           advised to be made false
``t*``    ``P(ā, t*)``           true in ``D`` or becomes true
``t**``   ``P(ā, t**)``          true in the repair
========  =====================  =========================================

The database associated with a stable model ``M`` (Definition 10) keeps the
atoms annotated ``t**``.  For RIC-acyclic constraint sets Theorem 4 states
that those databases are exactly the repairs; see DESIGN.md for the
corner case in which the literal program has an extra, non-minimal stable
model (a RIC already satisfied only through a null witness) — by default
:func:`program_repairs` filters the stable-model databases through the
paper's own ``≤_D`` minimality check, which restores the exact repair set
and is a no-op whenever the correspondence already holds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, NULL
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom, Comparison
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core.relevant import relevant_body_variables
from repro.core.repairs import minimal_under_leq_d
from repro.asp.grounding import ground_program
from repro.asp.shift import is_head_cycle_free, shift_program
from repro.asp.stable import stable_models
from repro.asp.syntax import Program, Rule


#: Annotation constants (kept short so that printed models stay readable).
TRUE_ADVISED = "ta"
FALSE_ADVISED = "fa"
TRUE_STAR = "t*"
TRUE_DOUBLE_STAR = "t**"

_ANNOTATIONS = {TRUE_ADVISED, FALSE_ADVISED, TRUE_STAR, TRUE_DOUBLE_STAR}


class RepairProgramError(ValueError):
    """Raised when a constraint cannot be compiled to repair-program rules."""


def _predicate_arities(
    instance: DatabaseInstance, constraints: ConstraintSet
) -> Dict[str, int]:
    arities: Dict[str, int] = {}
    for predicate in instance.predicates:
        arities[predicate] = instance.schema.arity(predicate)
    for constraint in constraints:
        if isinstance(constraint, NotNullConstraint):
            if constraint.arity is not None:
                arities.setdefault(constraint.predicate, constraint.arity)
            continue
        for atom in constraint.body + constraint.head_atoms:
            existing = arities.get(atom.predicate)
            if existing is not None and existing != atom.arity:
                raise RepairProgramError(
                    f"predicate {atom.predicate!r} used with arities {existing} and {atom.arity}"
                )
            arities.setdefault(atom.predicate, atom.arity)
    return arities


def _annotated(atom: Atom, annotation: str) -> Atom:
    """The annotated version of *atom* (one extra, last argument)."""

    return Atom(atom.predicate, atom.terms + (annotation,))


def _generic_atom(predicate: str, arity: int, annotation: Optional[str] = None) -> Atom:
    variables = tuple(Variable(f"X{i + 1}") for i in range(arity))
    terms = variables + ((annotation,) if annotation is not None else ())
    return Atom(predicate, terms)


def _not_null_comparisons(variables: Iterable[Variable]) -> List[Comparison]:
    return [
        Comparison("!=", variable, NULL)
        for variable in sorted(set(variables), key=lambda v: v.name)
    ]


def build_repair_program(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> Program:
    """Compile ``Π(D, IC)`` per Definition 9.

    Only UICs, RICs and NNCs are supported — the constraint classes the
    paper's Definition 9 covers; a general constraint of form (1) with
    existential variables and several antecedent atoms raises
    :class:`RepairProgramError`.
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    arities = _predicate_arities(instance, constraint_set)
    program = Program()

    # 1. Facts.
    for fact in instance.facts():
        program.add_fact(Atom(fact.predicate, fact.values))

    # 2.-4. Constraint-specific rules.
    ric_index = 0
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            _add_nnc_rules(program, constraint, arities)
        elif constraint.is_universal:
            _add_uic_rules(program, constraint)
        elif constraint.is_referential:
            ric_index += 1
            _add_ric_rules(program, constraint, ric_index)
        else:
            raise RepairProgramError(
                f"constraint {constraint!r} is neither a UIC, a RIC nor an NNC; "
                "Definition 9 does not cover it"
            )

    # 5.-7. Annotation, interpretation and denial rules per predicate.
    for predicate, arity in sorted(arities.items()):
        base = _generic_atom(predicate, arity)
        program.add_rule(
            Rule(head=(_annotated(base, TRUE_STAR),), positive=(base,))
        )
        program.add_rule(
            Rule(
                head=(_annotated(base, TRUE_STAR),),
                positive=(_annotated(base, TRUE_ADVISED),),
            )
        )
        program.add_rule(
            Rule(
                head=(_annotated(base, TRUE_DOUBLE_STAR),),
                positive=(_annotated(base, TRUE_STAR),),
                negative=(_annotated(base, FALSE_ADVISED),),
            )
        )
        program.add_rule(
            Rule(
                head=(),
                positive=(
                    _annotated(base, TRUE_ADVISED),
                    _annotated(base, FALSE_ADVISED),
                ),
            )
        )
    return program


def _add_uic_rules(program: Program, constraint: IntegrityConstraint) -> None:
    """Definition 9, item 2: one rule per split (Q', Q'') of the consequent atoms."""

    head_atoms = list(constraint.head_atoms)
    relevant_vars = relevant_body_variables(constraint)
    negated_builtins = tuple(c.negated() for c in constraint.head_comparisons)

    head = tuple(_annotated(atom, FALSE_ADVISED) for atom in constraint.body) + tuple(
        _annotated(atom, TRUE_ADVISED) for atom in head_atoms
    )
    base_positive = tuple(_annotated(atom, TRUE_STAR) for atom in constraint.body)
    comparisons = tuple(_not_null_comparisons(relevant_vars)) + negated_builtins

    for split in itertools.product((True, False), repeat=len(head_atoms)):
        # split[j] True  → Q_j ∈ Q'  (its fa-annotated atom is in the positive body)
        # split[j] False → Q_j ∈ Q'' (its base atom appears under default negation)
        positive = base_positive + tuple(
            _annotated(atom, FALSE_ADVISED)
            for atom, in_q_prime in zip(head_atoms, split)
            if in_q_prime
        )
        negative = tuple(
            atom for atom, in_q_prime in zip(head_atoms, split) if not in_q_prime
        )
        program.add_rule(
            Rule(head=head, positive=positive, negative=negative, comparisons=comparisons)
        )


def _add_ric_rules(
    program: Program, constraint: IntegrityConstraint, ric_index: int
) -> None:
    """Definition 9, item 3: the disjunctive repair rule and the aux rules."""

    body_atom = constraint.body[0]
    head_atom = constraint.head_atoms[0]
    shared_vars = sorted(
        relevant_body_variables(constraint), key=lambda v: v.name
    )
    existential_vars = sorted(constraint.existential_variables(), key=lambda v: v.name)
    aux_predicate = f"aux_{ric_index}"
    aux_atom = Atom(aux_predicate, tuple(shared_vars))

    null_head_terms = tuple(
        NULL if (is_variable(term) and term in set(existential_vars)) else term
        for term in head_atom.terms
    )
    null_head_atom = Atom(head_atom.predicate, null_head_terms)

    program.add_rule(
        Rule(
            head=(
                _annotated(body_atom, FALSE_ADVISED),
                _annotated(null_head_atom, TRUE_ADVISED),
            ),
            positive=(_annotated(body_atom, TRUE_STAR),),
            negative=(aux_atom,),
            comparisons=tuple(_not_null_comparisons(shared_vars)),
        )
    )
    for existential in existential_vars:
        program.add_rule(
            Rule(
                head=(aux_atom,),
                positive=(_annotated(head_atom, TRUE_STAR),),
                negative=(_annotated(head_atom, FALSE_ADVISED),),
                comparisons=tuple(
                    _not_null_comparisons(shared_vars)
                )
                + (Comparison("!=", existential, NULL),),
            )
        )
    if not existential_vars:  # defensive: a RIC always has existential variables
        program.add_rule(
            Rule(
                head=(aux_atom,),
                positive=(_annotated(head_atom, TRUE_STAR),),
                negative=(_annotated(head_atom, FALSE_ADVISED),),
                comparisons=tuple(_not_null_comparisons(shared_vars)),
            )
        )


def _add_nnc_rules(
    program: Program, constraint: NotNullConstraint, arities: Mapping[str, int]
) -> None:
    """Definition 9, item 4: delete tuples with null in the protected position."""

    arity = arities.get(constraint.predicate, constraint.arity)
    if arity is None:
        raise RepairProgramError(
            f"cannot determine the arity of {constraint.predicate!r} for the NNC"
        )
    base = _generic_atom(constraint.predicate, arity)
    protected = base.terms[constraint.position]
    program.add_rule(
        Rule(
            head=(_annotated(base, FALSE_ADVISED),),
            positive=(_annotated(base, TRUE_STAR),),
            comparisons=(Comparison("=", protected, NULL),),
        )
    )


# --------------------------------------------------------------------------- models → databases
def database_from_model(
    model: FrozenSet[Atom],
    schema_instance: Optional[DatabaseInstance] = None,
) -> DatabaseInstance:
    """Definition 10: keep the atoms annotated ``t**`` and strip the annotation."""

    schema = schema_instance.schema.copy() if schema_instance is not None else None
    result = DatabaseInstance(schema=schema)
    for atom in model:
        if atom.predicate.startswith("aux_"):
            continue
        if not atom.terms or atom.terms[-1] != TRUE_DOUBLE_STAR:
            continue
        result.add_tuple(atom.predicate, atom.terms[:-1])
    return result


@dataclass
class ProgramRepairResult:
    """Stable models of Π(D, IC) together with their associated databases."""

    program: Program
    models: List[FrozenSet[Atom]]
    databases: List[DatabaseInstance]
    repairs: List[DatabaseInstance]
    used_shift: bool


def program_repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    minimal_only: bool = True,
    use_shift: Optional[bool] = None,
    max_models: Optional[int] = None,
) -> ProgramRepairResult:
    """Compute the repairs of *instance* through the repair program.

    Parameters
    ----------
    minimal_only:
        Filter the stable-model databases through ``≤_D``-minimality
        (Definition 7).  This is the default because it makes the function
        agree with the direct repair engine on every input, including the
        Theorem 4 corner case documented in DESIGN.md.
    use_shift:
        Solve the shifted (normal) program instead of the disjunctive one.
        ``None`` (default) shifts automatically when the ground program is
        head-cycle-free; ``True`` forces shifting (the caller asserts HCF);
        ``False`` always solves the disjunctive program.
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    program = build_repair_program(instance, constraint_set)
    ground = ground_program(program)

    shifted = False
    solvable = ground
    if use_shift is True or (use_shift is None and is_head_cycle_free(ground)):
        if use_shift is None and not is_head_cycle_free(ground):
            pass
        else:
            solvable = shift_program(ground)
            shifted = True

    models = stable_models(solvable, max_models=max_models)
    databases: List[DatabaseInstance] = []
    seen: Set[FrozenSet[Fact]] = set()
    for model in models:
        database = database_from_model(model, schema_instance=instance)
        key = database.fact_set()
        if key not in seen:
            seen.add(key)
            databases.append(database)

    repairs = (
        minimal_under_leq_d(instance, databases) if minimal_only else list(databases)
    )
    return ProgramRepairResult(
        program=program,
        models=models,
        databases=databases,
        repairs=repairs,
        used_shift=shifted,
    )
