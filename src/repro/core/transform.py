"""The rewritten constraint ``ψ_N`` (formula (4)) and its classical variant.

Definition 4 reduces null-aware satisfaction to classical satisfaction:

    D |=_N ψ   iff   D^{A(ψ)} |= ψ_N

where ``ψ_N`` keeps only the relevant attributes of every atom, adds a
disjunct ``IsNull(v_j)`` for every relevant antecedent variable ``v_j``,
and otherwise mirrors ``ψ``.  This module builds ``ψ_N`` as a first-order
formula over the *projected* predicates so that it can be fed directly to
the generic evaluator (:func:`repro.logic.evaluation.holds`) applied to
``D^{A(ψ)}``; the fast path used in production is the direct violation
checker in :mod:`repro.core.satisfaction`, and the two are cross-validated
in the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.constraints.atoms import Atom, Comparison, IsNullAtom
from repro.constraints.ic import IntegrityConstraint
from repro.constraints.terms import Variable, is_variable
from repro.core.relevant import (
    relevant_body_variables,
    relevant_existential_variables,
    relevant_positions,
)
from repro.logic.formula import (
    AtomFormula,
    ComparisonFormula,
    Exists,
    ForAll,
    Formula,
    Implies,
    IsNullFormula,
    conjunction,
    disjunction,
)


def _projected_atom(atom: Atom, positions: Dict[str, Tuple[int, ...]]) -> Atom:
    """The atom restricted to the relevant positions of its predicate."""

    kept = positions.get(atom.predicate, tuple(range(atom.arity)))
    return atom.project(kept)


def null_aware_formula(constraint: IntegrityConstraint) -> Formula:
    """Build ``ψ_N`` (formula (4)) over the projected predicates.

    The result is a closed formula: antecedent variables that survive the
    projection are universally quantified, relevant existential variables
    are existentially quantified inside the consequent.
    """

    positions = relevant_positions(constraint)
    body_atoms = [_projected_atom(atom, positions) for atom in constraint.body]
    head_atoms = [_projected_atom(atom, positions) for atom in constraint.head_atoms]

    antecedent = conjunction([AtomFormula(atom) for atom in body_atoms])

    null_disjuncts: List[Formula] = [
        IsNullFormula(IsNullAtom(variable))
        for variable in sorted(relevant_body_variables(constraint), key=lambda v: v.name)
    ]

    consequent_atoms: List[Formula] = [AtomFormula(atom) for atom in head_atoms]
    comparisons: List[Formula] = [
        ComparisonFormula(comparison) for comparison in constraint.head_comparisons
    ]
    inner_consequent = disjunction(consequent_atoms + comparisons)

    existential = sorted(relevant_existential_variables(constraint), key=lambda v: v.name)
    if existential:
        inner_consequent = Exists(tuple(existential), inner_consequent)

    consequent = disjunction(null_disjuncts + [inner_consequent])
    implication = Implies(antecedent, consequent)

    universal = sorted(
        {
            term
            for atom in body_atoms
            for term in atom.terms
            if is_variable(term)
        },
        key=lambda v: v.name,
    )
    if universal:
        return ForAll(tuple(universal), implication)
    return implication


def classical_formula(constraint: IntegrityConstraint) -> Formula:
    """The constraint as a plain first-order sentence (no projection, no IsNull).

    This is the reading used by the *classical* comparison semantics
    (``null`` treated as an ordinary constant) and by the null-free case,
    where Definition 4 coincides with first-order satisfaction.
    """

    antecedent = conjunction([AtomFormula(atom) for atom in constraint.body])
    consequent_parts: List[Formula] = [AtomFormula(atom) for atom in constraint.head_atoms]
    consequent_parts += [
        ComparisonFormula(comparison) for comparison in constraint.head_comparisons
    ]
    consequent = disjunction(consequent_parts)
    existential = sorted(constraint.existential_variables(), key=lambda v: v.name)
    if existential:
        consequent = Exists(tuple(existential), consequent)
    implication = Implies(antecedent, consequent)
    universal = sorted(constraint.body_variables(), key=lambda v: v.name)
    if universal:
        return ForAll(tuple(universal), implication)
    return implication
