"""Null-introducing database repairs (Definitions 6–7, Proposition 1).

A repair of ``D`` w.r.t. ``IC`` is an instance over the same schema that
satisfies ``IC`` under ``|=_N`` and is ``≤_D``-minimal, where ``≤_D``
(Definition 6) compares instances through their symmetric difference with
``D`` and treats atoms containing ``null`` specially: an atom with nulls
in the difference of ``D'`` only requires *some* atom with the same
non-null part in the difference of ``D''``.  This makes a repair that
inserts ``Q(a, null)`` strictly preferable to one that inserts
``Q(a, b)`` for an arbitrary domain constant ``b``, which is how the
paper regains finitely many repairs and decidability of CQA.

The enumeration engine mirrors the ground repair-program rules: it picks a
ground violation and branches over its possible fixes — delete one of the
participating antecedent facts, or insert one of the consequent atoms with
``null`` in the existentially quantified positions — until the instance is
consistent, and finally filters the candidates through ``≤_D``-minimality.
A tuple inserted along a branch is never deleted on the same branch and
vice versa (the analogue of the program denial ``← P(x̄, ta), P(x̄, fa)``),
which guarantees termination because the universe of candidate atoms is
finite (Proposition 1).

For non-conflicting constraint sets (the paper's standing assumption, see
:meth:`repro.constraints.ic.ConstraintSet.is_non_conflicting`) this
computes exactly the repairs of Definition 7; a brute-force reference
enumerator over the restricted domain is provided for cross-validation on
tiny instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, NULL, constant_sort_key, is_null
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.errors import StateBudgetExceededError
from repro.obs import clock as _clock
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience import budget as _budget
from repro.core.satisfaction import (
    Violation,
    all_violations,
    is_consistent,
    row_witnesses_atom,
    witness_positions,
)


# --------------------------------------------------------------------------- ≤_D
def delta(original: DatabaseInstance, other: DatabaseInstance) -> FrozenSet[Fact]:
    """``∆(D, D')``: the symmetric difference as a set of facts."""

    return original.symmetric_difference(other)


def _null_atom_covered(
    fact: Fact, delta_other: FrozenSet[Fact], delta_self: FrozenSet[Fact]
) -> bool:
    """Condition (b) of Definition 6 for one atom with nulls."""

    non_null = fact.non_null_positions()
    for candidate in delta_other:
        if candidate.predicate != fact.predicate or candidate.arity != fact.arity:
            continue
        if candidate in delta_self:
            continue
        if all(candidate.values[i] == fact.values[i] for i in non_null):
            return True
    return False


def leq_deltas(delta_first: FrozenSet[Fact], delta_second: FrozenSet[Fact]) -> bool:
    """``≤_D`` (Definition 6) evaluated directly on two symmetric differences.

    The anytime stream and the parallel minimality filter hold the
    candidates as precomputed ``∆(D, ·)`` sets; this is :func:`leq_d`
    without the instance subtraction.
    """

    for fact in delta_first:
        if not fact.has_null():
            if fact not in delta_second:
                return False
        else:
            if not _null_atom_covered(fact, delta_second, delta_first):
                return False
    return True


def leq_d(
    original: DatabaseInstance,
    first: DatabaseInstance,
    second: DatabaseInstance,
) -> bool:
    """``first ≤_D second`` (Definition 6), with ``D = original``."""

    return leq_deltas(delta(original, first), delta(original, second))


def lt_d(
    original: DatabaseInstance,
    first: DatabaseInstance,
    second: DatabaseInstance,
) -> bool:
    """``first <_D second``: ``first ≤_D second`` but not ``second ≤_D first``."""

    return leq_d(original, first, second) and not leq_d(original, second, first)


# --------------------------------------------------------------------------- fixes
def deletion_fixes(violation: Violation) -> List[Fact]:
    """The antecedent facts whose deletion resolves *violation*."""

    seen: Set[Fact] = set()
    ordered: List[Fact] = []
    for fact in violation.body_facts:
        if fact not in seen:
            seen.add(fact)
            ordered.append(fact)
    return ordered


def insertion_fixes(violation: Violation) -> List[Fact]:
    """The consequent atoms whose insertion resolves *violation*.

    Universal variables take their value from the violation's assignment,
    constants stay, and existential variables are filled with ``null`` —
    the paper's way of repairing referential constraints without picking an
    arbitrary domain value.  NOT-NULL and denial/check constraints have no
    insertion fixes.
    """

    constraint = violation.constraint
    if isinstance(constraint, NotNullConstraint):
        return []
    assignment = violation.assignment
    fixes: List[Fact] = []
    for atom in constraint.head_atoms:
        values: List[Constant] = []
        for term in atom.terms:
            if is_variable(term):
                values.append(assignment.get(term, NULL))
            else:
                values.append(term)
        fixes.append(Fact(atom.predicate, values))
    return fixes


# --------------------------------------------------------------------------- chooser
@lru_cache(maxsize=4096)
def constraint_structural_key(constraint: AnyConstraint) -> Tuple:
    """A name-independent, totally ordered signature of a constraint.

    Variables are numbered by first occurrence (antecedent atoms first,
    then consequent atoms, then built-ins), so two constraints that differ
    only in variable or constraint *names* share a key.  Used by the
    repair search's violation chooser so that exploration order — and the
    ``≤_D`` corner documented in ROADMAP — no longer depends on how
    constraints happen to be named.
    """

    if isinstance(constraint, NotNullConstraint):
        return ("nnc", constraint.predicate, constraint.position)
    order: Dict[Variable, int] = {}

    def encode(term: object) -> Tuple:
        if is_variable(term):
            return ("var", (order.setdefault(term, len(order)),))
        return ("const", constant_sort_key(term))  # type: ignore[arg-type]

    body_sig = tuple(
        (atom.predicate, tuple(encode(t) for t in atom.terms))
        for atom in constraint.body
    )
    head_sig = tuple(
        (atom.predicate, tuple(encode(t) for t in atom.terms))
        for atom in constraint.head_atoms
    )
    comparison_sig = tuple(
        (c.op, encode(c.left), encode(c.right)) for c in constraint.head_comparisons
    )
    return ("ic", body_sig, head_sig, comparison_sig)


def violation_choice_key(violation: Violation) -> Tuple:
    """Deterministic, name-independent ordering key for the violation chooser.

    Structural constraint signature first, then the participating facts,
    then the bound values — so two runs (and all three engine methods)
    always resolve the same violation first, whatever the constraints are
    called and in whatever order the joins enumerated the matches.
    """

    return (
        constraint_structural_key(violation.constraint),
        tuple(fact.sort_key() for fact in violation.body_facts),
        tuple(constant_sort_key(value) for _, value in violation.bindings),
    )


# --------------------------------------------------------------------------- tracking
class ViolationIndex:
    """Map each predicate to the constraints whose body or head mention it.

    Built once per constraint set; the incremental tracker consults it to
    recompute only the affected constraints when a single fact changes.
    The index also carries the set's
    :class:`~repro.compile.kernel.CompiledProgram` (``.program``): one
    compiled unit per constraint — full plan, seeded delta plans,
    witness probes — resolved through the process-wide memo cache, so a
    session, its repair engines and (per worker process) the parallel
    search of :mod:`repro.core.parallel` all execute the same compiled
    plans and each constraint set is compiled at most once, ever.
    """

    def __init__(self, constraints: Union[ConstraintSet, Iterable[AnyConstraint]]):
        from repro.compile.kernel import compile_program

        self.constraints: List[AnyConstraint] = list(constraints)
        #: The compiled plans, index-aligned with ``constraints``.
        self.program = compile_program(tuple(self.constraints))
        self._body: Dict[str, List[int]] = {}
        self._head: Dict[str, List[int]] = {}
        self._affected: Dict[str, List[int]] = {}
        for index, constraint in enumerate(self.constraints):
            if isinstance(constraint, NotNullConstraint):
                self._body.setdefault(constraint.predicate, []).append(index)
                continue
            for predicate in sorted(constraint.body_predicates()):
                self._body.setdefault(predicate, []).append(index)
            for predicate in sorted(constraint.head_predicates()):
                self._head.setdefault(predicate, []).append(index)
        self._body_sets: Dict[str, FrozenSet[int]] = {
            predicate: frozenset(indices) for predicate, indices in self._body.items()
        }
        self._head_sets: Dict[str, FrozenSet[int]] = {
            predicate: frozenset(indices) for predicate, indices in self._head.items()
        }
        for predicate in set(self._body) | set(self._head):
            merged = set(self._body.get(predicate, ())) | set(
                self._head.get(predicate, ())
            )
            self._affected[predicate] = sorted(merged)

    _EMPTY: FrozenSet[int] = frozenset()

    def body_mentions(self, predicate: str) -> Sequence[int]:
        """Indices of constraints whose antecedent mentions *predicate*."""

        return self._body.get(predicate, ())

    def head_mentions(self, predicate: str) -> Sequence[int]:
        """Indices of constraints whose consequent mentions *predicate*."""

        return self._head.get(predicate, ())

    def body_mention_set(self, predicate: str) -> FrozenSet[int]:
        """:meth:`body_mentions` as a set, for membership tests on the hot path."""

        return self._body_sets.get(predicate, self._EMPTY)

    def head_mention_set(self, predicate: str) -> FrozenSet[int]:
        """:meth:`head_mentions` as a set, for membership tests on the hot path."""

        return self._head_sets.get(predicate, self._EMPTY)

    def affected(self, predicate: str) -> Sequence[int]:
        """Indices of constraints a change to *predicate* can affect."""

        return self._affected.get(predicate, ())


@dataclass
class ViolationDelta:
    """Undo record of one :class:`ViolationTracker` update."""

    removed: List[Tuple[int, Violation]] = field(default_factory=list)
    added: List[Tuple[int, Violation]] = field(default_factory=list)


class ViolationTracker:
    """Maintain the violation set of a mutating instance incrementally.

    The tracker holds, per constraint, the current set of ground
    violations of a live :class:`DatabaseInstance`.  After every single
    fact insertion (:meth:`notify_added`) or deletion
    (:meth:`notify_removed`) — performed on the instance *first* — it
    updates only the constraints whose body or head mentions the fact's
    predicate, seeding the re-enumeration from the changed fact through
    the constraint set's compiled delta plans (the
    :class:`~repro.compile.kernel.CompiledProgram` carried by the
    :class:`ViolationIndex` — compiled once per constraint set, shared
    by every tracker over the same index):

    * a fact added to a **body** predicate can only create violations
      that use the fact itself (the seeded delta plans, the compiled
      form of :func:`repro.core.satisfaction.seeded_violations`);
    * a fact removed from a **body** predicate only destroys the stored
      violations listing it among their ``body_facts``;
    * a fact added to a **head** predicate can only resolve stored
      violations it now witnesses (one :func:`row_witnesses_atom` check
      per stored violation);
    * a fact removed from a **head** predicate can only surface matches
      whose witness it was — re-enumerated under the partial assignment
      the deleted witness pins down (the binding-pattern delta plans,
      the compiled form of
      :func:`repro.core.satisfaction.violations_under_assignment`).

    Every update returns a :class:`ViolationDelta` that :meth:`revert`
    undoes exactly, which is what lets the repair search run as a
    mutate/undo depth-first search over a single working instance.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ViolationIndex, ConstraintSet, Iterable[AnyConstraint]],
        seed: Optional["ViolationTracker"] = None,
    ):
        self.index = (
            constraints
            if isinstance(constraints, ViolationIndex)
            else ViolationIndex(constraints)
        )
        self.instance = instance
        if seed is not None:
            # Warm start: adopt another tracker's violation store instead of
            # re-enumerating.  The caller guarantees *seed* tracks the same
            # constraints (in the same order) over an instance with the same
            # facts — the session façade hands its warm tracker to the repair
            # engine this way, so a query on an already-tracked database
            # skips the full violation sweep entirely.
            if len(seed._store) != len(self.index.constraints):
                raise ValueError(
                    "seed tracker covers a different constraint set "
                    f"({len(seed._store)} stores vs {len(self.index.constraints)} constraints)"
                )
            self._store: List[Dict[Violation, None]] = [
                dict(store) for store in seed._store
            ]
        else:
            with _trace.span("violations.sweep") as sweep_span:
                self._store = [
                    dict.fromkeys(unit.violations(instance))
                    for unit in self.index.program.units
                ]
                if sweep_span:
                    swept = sum(len(store) for store in self._store)
                    sweep_span.add(violations=swept, constraints=len(self._store))
            _metrics.counter(
                "repro_tracker_sweeps_total", "full violation sweeps (tracker builds)"
            ).inc()
        #: Counters surfaced through :class:`RepairStatistics`.
        self.updates = 0
        self.constraints_reevaluated = 0
        #: Delta-plan effectiveness counters (``explain(analyze=True)``):
        #: how many seeded updates changed the store at all, and how many
        #: violations the delta plans added/removed in total.  Cumulative
        #: over the tracker's lifetime; ``revert`` does not roll them back.
        self.delta_hits = 0
        self.delta_violations_added = 0
        self.delta_violations_removed = 0

    # ------------------------------------------------------------------ queries
    def violations(self) -> List[Violation]:
        """The current violations, grouped in constraint order."""

        found: List[Violation] = []
        for store in self._store:
            found.extend(store)
        return found

    def has_violations(self) -> bool:
        """True iff any constraint currently has a violation."""

        return any(self._store)

    def violation_count(self) -> int:
        """Total number of current violations."""

        return sum(len(store) for store in self._store)

    # ------------------------------------------------------------------ updates
    def notify_added(self, fact: Fact) -> ViolationDelta:
        """Update after *fact* was inserted into the tracked instance."""

        self.updates += 1
        delta = ViolationDelta()
        head_indices = self.index.head_mention_set(fact.predicate)
        body_indices = self.index.body_mention_set(fact.predicate)
        for index in self.index.affected(fact.predicate):
            constraint = self.index.constraints[index]
            store = self._store[index]
            self.constraints_reevaluated += 1
            if isinstance(constraint, NotNullConstraint):
                if constraint.position < fact.arity and is_null(
                    fact.values[constraint.position]
                ):
                    violation = Violation(constraint, (), (fact,))
                    if violation not in store:
                        store[violation] = None
                        delta.added.append((index, violation))
                continue
            # A new consequent fact may witness (and thereby resolve)
            # stored violations; check it against each of them directly.
            if index in head_indices:
                resolved: List[Violation] = []
                for violation in store:
                    for atom in constraint.head_atoms:
                        if atom.predicate != fact.predicate:
                            continue
                        kept = witness_positions(constraint, atom)
                        if row_witnesses_atom(
                            atom, fact.values, violation.assignment, kept
                        ):
                            resolved.append(violation)
                            break
                for violation in resolved:
                    del store[violation]
                    delta.removed.append((index, violation))
            # A new antecedent fact can only create violations involving
            # it — enumerated through the constraint's compiled delta plans.
            if index in body_indices:
                unit = self.index.program.units[index]
                for violation in unit.seeded_violations(self.instance, fact):
                    if violation not in store:
                        store[violation] = None
                        delta.added.append((index, violation))
        self._count_delta(delta)
        return delta

    def notify_removed(self, fact: Fact) -> ViolationDelta:
        """Update after *fact* was deleted from the tracked instance."""

        self.updates += 1
        delta = ViolationDelta()
        head_indices = self.index.head_mention_set(fact.predicate)
        body_indices = self.index.body_mention_set(fact.predicate)
        for index in self.index.affected(fact.predicate):
            constraint = self.index.constraints[index]
            store = self._store[index]
            self.constraints_reevaluated += 1
            if isinstance(constraint, NotNullConstraint):
                violation = Violation(constraint, (), (fact,))
                if violation in store:
                    del store[violation]
                    delta.removed.append((index, violation))
                continue
            if index in body_indices:
                doomed = [v for v in store if fact in v.body_facts]
                for violation in doomed:
                    del store[violation]
                    delta.removed.append((index, violation))
            if index in head_indices:
                unit = self.index.program.units[index]
                for partial in _lost_witness_assignments(constraint, fact):
                    for violation in unit.violations_under(self.instance, partial):
                        if violation not in store:
                            store[violation] = None
                            delta.added.append((index, violation))
        self._count_delta(delta)
        return delta

    def _count_delta(self, delta: ViolationDelta) -> None:
        if delta.added or delta.removed:
            self.delta_hits += 1
            self.delta_violations_added += len(delta.added)
            self.delta_violations_removed += len(delta.removed)

    def revert(self, delta: ViolationDelta) -> None:
        """Undo one update (used when the search backtracks)."""

        for index, violation in delta.added:
            del self._store[index][violation]
        for index, violation in delta.removed:
            self._store[index][violation] = None


def _lost_witness_assignments(
    constraint: IntegrityConstraint, fact: Fact
) -> Iterator[Dict[Variable, Constant]]:
    """Partial assignments whose witness the deleted *fact* may have been.

    For each consequent atom of the fact's predicate, pins the universal
    variables at the witness-relevant positions to the fact's values; body
    matches incompatible with one of these assignments never counted
    *fact* as a witness, so only the compatible ones need re-checking.
    Yields nothing when the fact cannot have matched the atom at all
    (constant mismatch or inconsistent repeated variables).
    """

    body_vars = constraint.body_variables()
    for atom in constraint.head_atoms:
        if atom.predicate != fact.predicate or atom.arity != fact.arity:
            continue
        kept = witness_positions(constraint, atom)
        partial: Dict[Variable, Constant] = {}
        existential: Dict[Variable, Constant] = {}
        feasible = True
        for position in kept:
            term = atom.terms[position]
            value = fact.values[position]
            if is_variable(term):
                binding = partial if term in body_vars else existential
                if term in binding:
                    if binding[term] != value:
                        feasible = False
                        break
                else:
                    binding[term] = value
            elif term != value:
                feasible = False
                break
        if feasible:
            yield partial


# --------------------------------------------------------------------------- engine
class RepairSearchBudgetExceeded(StateBudgetExceededError):
    """Raised when the repair search exceeds its configured state budget.

    Part of the :mod:`repro.errors` taxonomy since the resilience layer
    landed: deriving from :class:`~repro.errors.StateBudgetExceededError`
    (itself a :class:`RuntimeError` for backward compatibility) means
    both ``except RepairSearchBudgetExceeded`` and the taxonomy-level
    ``except BudgetExceededError`` keep working.
    """


@dataclass
class RepairStatistics:
    """Counters describing one repair enumeration (used by the benchmarks).

    The first four counters describe the search tree; the remaining ones
    were added with the incremental engine and are documented in the
    benchmark harness (see ``benchmarks/harness.py`` and ROADMAP):

    * ``violation_updates`` — incremental tracker updates (one per fact
      add/delete along the search, ``method="incremental"`` only);
    * ``constraints_reevaluated`` — per-constraint seeded update passes
      the tracker ran (≤ ``violation_updates × |IC|``; the smaller the
      ratio, the better the predicate → constraint index is pruning);
    * ``leq_d_comparisons`` — pairwise ``≤_D`` checks performed by the
      minimality filter;
    * ``search_seconds`` / ``minimality_seconds`` — **wall-clock** split
      between candidate enumeration and the ``≤_D`` filter, always
      measured by the driving engine (never summed across concurrent
      tasks — see :meth:`merge`);
    * ``task_cpu_seconds`` — CPU seconds summed across the parallel
      search's tasks (``method="parallel"`` only; 0.0 for the
      sequential methods, whose CPU ≈ wall).  With ``workers`` > 1 this
      legitimately exceeds ``search_seconds``; the ratio is the
      effective parallelism.

    The ship-bytes group measures the parallel pool's process-boundary
    traffic (``method="parallel"`` with ``workers >= 2`` only; all 0
    otherwise).  ``tasks_shipped`` always counts; the byte fields are
    only filled when ``REPRO_SHIP_AUDIT=1`` is set, because measuring
    them costs an extra pickle per shipment:

    * ``tasks_shipped`` — task payloads submitted to pool workers;
    * ``task_ship_bytes`` / ``task_ship_bytes_raw`` — pickled bytes of
      the codec-encoded task+result payloads actually shipped, vs. what
      the un-encoded objects would have cost (benchmark E14 reports the
      ratio);
    * ``instance_ship_bytes`` / ``instance_ship_bytes_raw`` — the base
      instance's columnar shared-memory pack per pool spawn, vs. the
      pickled facts tuple it replaces (``instance_ship_bytes`` is
      recorded even without the audit flag — the pack size is free).
    """

    states_explored: int = 0
    candidates_found: int = 0
    repairs_found: int = 0
    dead_branches: int = 0
    violation_updates: int = 0
    constraints_reevaluated: int = 0
    leq_d_comparisons: int = 0
    search_seconds: float = 0.0
    minimality_seconds: float = 0.0
    task_cpu_seconds: float = 0.0
    tasks_shipped: int = 0
    task_ship_bytes: int = 0
    task_ship_bytes_raw: int = 0
    instance_ship_bytes: int = 0
    instance_ship_bytes_raw: int = 0

    #: Fields :meth:`merge` must NOT sum: they are wall-clock measures
    #: owned by the driving engine's parent span — summing them across
    #: concurrent tasks would overstate elapsed time by up to the worker
    #: count.  Per-task CPU time sums meaningfully and has its own field.
    _WALL_CLOCK_FIELDS = ("search_seconds", "minimality_seconds")

    def merge(self, other: "RepairStatistics") -> "RepairStatistics":
        """Fold another run's counters into this one, in place, and return it.

        The parallel engine gives every worker task its **own**
        statistics object — incrementing a shared one from several
        workers would race (and across processes would silently update
        a copy) — and the scheduler folds the per-task objects together
        as results arrive.  Every counter sums, ``task_cpu_seconds``
        included; the two wall-clock fields do **not** (concurrent
        intervals overlap, so their sum overstates elapsed time) — they
        keep this object's value, and the driving engine assigns them
        from its own clock around the whole run.

        >>> a = RepairStatistics(states_explored=3, search_seconds=0.5)
        >>> b = RepairStatistics(states_explored=2, search_seconds=0.4,
        ...                      task_cpu_seconds=0.3)
        >>> a.merge(b) is a
        True
        >>> (a.states_explored, a.search_seconds, a.task_cpu_seconds)
        (5, 0.5, 0.3)
        """

        for spec in fields(self):
            if spec.name in self._WALL_CLOCK_FIELDS:
                continue
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )
        return self


#: The sequential violation-evaluation strategies of ``RepairEngine(method=)``.
#: They share one search tree and are asserted state-for-state identical.
REPAIR_METHODS = ("incremental", "indexed", "naive")

#: The work-distributing mode: same repairs, same discovery order, but the
#: frontier is split into tasks (optionally across processes), so its state
#: counter may differ from the sequential trio's unique-state count.
PARALLEL_METHOD = "parallel"

#: Everything ``RepairEngine(method=)`` accepts.
ALL_REPAIR_METHODS = REPAIR_METHODS + (PARALLEL_METHOD,)


class RepairEngine:
    """Enumerate the repairs of Definition 7 for a fixed constraint set.

    Three violation-evaluation methods are available, all bit-for-bit
    identical in the repairs they produce (the benchmark E12 and the
    property tests assert it):

    * ``"incremental"`` (default) — a mutate/undo depth-first search over
      a single working instance whose violation set is maintained by a
      :class:`ViolationTracker`: each search step pays one seeded update
      for the constraints touching the changed fact instead of a full
      ``all_violations`` sweep, and no instance is copied per branch;
    * ``"indexed"`` — recompute ``all_violations`` per state through the
      compiled kernel plans (copies per branch are copy-on-write);
    * ``"naive"`` — the seed reference path: full recomputation per state
      with unindexed nested-loop joins;
    * ``"parallel"`` — split the mutate/undo frontier into bounded tasks
      executed inline (``workers <= 1``) or on a process pool
      (``workers >= 2``), each worker owning a copy-on-write instance
      and its own :class:`ViolationTracker`; candidates merge back in
      the sequential discovery order, so the repair list is bit-identical
      to ``"incremental"`` (see :mod:`repro.core.parallel`).

    >>> from repro.relational.instance import DatabaseInstance
    >>> from repro.constraints.parser import parse_constraint
    >>> instance = DatabaseInstance.from_dict(
    ...     {"Emp": [("e1", "sales"), ("e1", "hr")]})
    >>> key = parse_constraint("Emp(e, d), Emp(e, f) -> d = f")
    >>> sequential = RepairEngine([key]).repairs(instance)
    >>> parallel = RepairEngine([key], method="parallel").repairs(instance)
    >>> parallel == sequential
    True
    >>> [sorted(map(repr, r.facts())) for r in parallel]
    [['Emp(e1, sales)'], ['Emp(e1, hr)']]
    """

    def __init__(
        self,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
        max_states: Optional[int] = 200_000,
        method: str = "incremental",
        violation_index: Optional[ViolationIndex] = None,
        workers: int = 0,
        chunk_states: Optional[int] = None,
    ):
        if method not in ALL_REPAIR_METHODS:
            raise ValueError(
                f"unknown repair method {method!r}; use one of {', '.join(ALL_REPAIR_METHODS)}"
            )
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._max_states = max_states
        self._method = method
        #: Worker processes for ``method="parallel"``: ``<= 1`` executes the
        #: same task decomposition inline (deterministic, no processes).
        self._workers = max(workers, 0)
        #: States one parallel task may explore before deferring the rest of
        #: its subtree; ``None`` picks :data:`repro.core.parallel.DEFAULT_CHUNK_STATES`.
        self._chunk_states = chunk_states
        #: *violation_index* lets a caller that already indexed the same
        #: constraint set (the session façade) share it instead of
        #: rebuilding; it must cover exactly *constraints*, in order.
        self._violation_index = (
            violation_index
            if violation_index is not None
            else ViolationIndex(self._constraints)
        )
        self.statistics = RepairStatistics()

    @property
    def constraints(self) -> ConstraintSet:
        """The constraint set the engine repairs against."""

        return self._constraints

    @property
    def method(self) -> str:
        """The violation-evaluation method the engine uses."""

        return self._method

    # ------------------------------------------------------------------ search
    def candidates(
        self,
        instance: DatabaseInstance,
        seed_tracker: Optional[ViolationTracker] = None,
    ) -> List[DatabaseInstance]:
        """All consistent instances reachable by resolving violations.

        The result is a superset of the repairs; :meth:`repairs` filters it
        through ``≤_D``-minimality.  *seed_tracker* (``"incremental"`` only)
        warm-starts the search's violation store from a tracker already
        maintained over an instance with the same facts and constraints,
        skipping the initial full sweep; the other methods ignore it.
        """

        self.statistics = RepairStatistics()
        with _trace.span("repair.search", method=self._method):
            started = _clock.now()
            try:
                if self._method == "incremental":
                    return self._candidates_incremental(instance, seed_tracker)
                if self._method == PARALLEL_METHOD:
                    return self._candidates_parallel(instance)
                return self._candidates_recompute(
                    instance, naive=self._method == "naive"
                )
            finally:
                self.statistics.search_seconds = _clock.now() - started

    def _enter_state(
        self,
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]],
        inserted: FrozenSet[Fact],
        deleted: FrozenSet[Fact],
    ) -> bool:
        """Record a search state; False if seen before, raises over budget."""

        state_key = (inserted, deleted)
        if state_key in visited:
            return False
        visited.add(state_key)
        self.statistics.states_explored += 1
        if self._max_states is not None and self.statistics.states_explored > self._max_states:
            raise RepairSearchBudgetExceeded(
                f"repair search exceeded {self._max_states} states; "
                "raise max_states or simplify the instance"
            )
        budget = _budget.active()
        if budget:  # the ambient request budget: deadline / cancel / memory
            budget.charge_states(1)
            budget.checkpoint()
        return True

    def _candidates_recompute(
        self, instance: DatabaseInstance, naive: bool
    ) -> List[DatabaseInstance]:
        found: Dict[FrozenSet[Fact], DatabaseInstance] = {}
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()

        def explore(
            current: DatabaseInstance,
            inserted: FrozenSet[Fact],
            deleted: FrozenSet[Fact],
        ) -> None:
            if not self._enter_state(visited, inserted, deleted):
                return

            violations = all_violations(current, self._constraints, naive=naive)
            if not violations:
                key = current.fact_set()
                if key not in found:
                    found[key] = current.copy()
                    self.statistics.candidates_found += 1
                return

            violation = min(violations, key=violation_choice_key)
            branched = False
            for fact in deletion_fixes(violation):
                if fact in inserted:
                    continue  # the program denial: never undo an insertion
                next_instance = current.copy()
                next_instance.discard(fact)
                branched = True
                explore(next_instance, inserted, deleted | {fact})
            for fact in insertion_fixes(violation):
                if fact in deleted or fact in current:
                    continue
                next_instance = current.copy()
                next_instance.add(fact)
                branched = True
                explore(next_instance, inserted | {fact}, deleted)
            if not branched:
                self.statistics.dead_branches += 1

        explore(instance.copy(), frozenset(), frozenset())
        return list(found.values())

    def _candidates_incremental(
        self,
        instance: DatabaseInstance,
        seed_tracker: Optional[ViolationTracker] = None,
    ) -> List[DatabaseInstance]:
        """Mutate/undo search over one working instance with tracked violations."""

        found: Dict[FrozenSet[Fact], DatabaseInstance] = {}
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()
        working = instance.copy()
        tracker = ViolationTracker(working, self._violation_index, seed=seed_tracker)

        def explore(inserted: FrozenSet[Fact], deleted: FrozenSet[Fact]) -> None:
            if not self._enter_state(visited, inserted, deleted):
                return

            current_violations = tracker.violations()
            if not current_violations:
                key = working.fact_set()
                if key not in found:
                    found[key] = working.copy()
                    self.statistics.candidates_found += 1
                return

            violation = min(current_violations, key=violation_choice_key)
            branched = False
            for fact in deletion_fixes(violation):
                if fact in inserted:
                    continue  # the program denial: never undo an insertion
                working.discard(fact)
                delta = tracker.notify_removed(fact)
                branched = True
                explore(inserted, deleted | {fact})
                tracker.revert(delta)
                working.add(fact)
            for fact in insertion_fixes(violation):
                if fact in deleted or fact in working:
                    continue
                working.add(fact)
                delta = tracker.notify_added(fact)
                branched = True
                explore(inserted | {fact}, deleted)
                tracker.revert(delta)
                working.discard(fact)
            if not branched:
                self.statistics.dead_branches += 1

        try:
            explore(frozenset(), frozenset())
        finally:
            self.statistics.violation_updates = tracker.updates
            self.statistics.constraints_reevaluated = tracker.constraints_reevaluated
        return list(found.values())

    def _make_search(self, instance: DatabaseInstance):
        from repro.core.parallel import DEFAULT_CHUNK_STATES, ParallelRepairSearch

        return ParallelRepairSearch(
            instance,
            self._constraints,
            workers=self._workers,
            max_states=self._max_states,
            chunk_states=self._chunk_states or DEFAULT_CHUNK_STATES,
            violation_index=self._violation_index,
        )

    def _candidates_parallel(self, instance: DatabaseInstance) -> List[DatabaseInstance]:
        """Frontier-task search; candidates come back in discovery order."""

        search = self._make_search(instance)
        ordered = search.collect()
        self.statistics.merge(search.statistics)
        schema = instance.schema
        base_facts = instance.fact_set()
        return [
            DatabaseInstance.from_facts((base_facts - deleted) | inserted, schema=schema)
            for _, inserted, deleted in ordered
        ]

    def _repairs_parallel(self, instance: DatabaseInstance) -> List[DatabaseInstance]:
        """Parallel search + ``≤_D`` filter on the deltas, then materialise.

        The candidates' deltas are exactly the ``inserted | deleted``
        pairs the tasks return, so minimality is decided *before* any
        candidate instance is built — only the surviving repairs pay
        the O(|D|) materialisation and no symmetric difference is ever
        recomputed.
        """

        self.statistics = RepairStatistics()
        started = _clock.now()
        search = self._make_search(instance)
        with _trace.span("repair.search", method=self._method, workers=self._workers):
            try:
                ordered = search.collect()
                self.statistics.merge(search.statistics)
            finally:
                self.statistics.search_seconds = _clock.now() - started
        minimality_started = _clock.now()
        with _trace.span("repair.minimality", candidates=len(ordered)):
            deltas = [inserted | deleted for _, inserted, deleted in ordered]
            if (
                self._workers >= 2
                and len(deltas) >= self._PARALLEL_MINIMALITY_MIN
            ):
                from repro.core.parallel import parallel_minimal_flags

                flags, comparisons = parallel_minimal_flags(deltas, self._workers)
            else:
                flags, comparisons = minimal_flags_counted(deltas)
            schema = instance.schema
            base_facts = instance.fact_set()
            minimal = [
                DatabaseInstance.from_facts(
                    (base_facts - deleted) | inserted, schema=schema
                )
                for (_, inserted, deleted), keep in zip(ordered, flags)
                if keep
            ]
        self.statistics.minimality_seconds = _clock.now() - minimality_started
        self.statistics.leq_d_comparisons = comparisons
        self.statistics.repairs_found = len(minimal)
        return minimal

    #: Below this many candidates the pairwise filter is cheaper than a pool.
    _PARALLEL_MINIMALITY_MIN = 64

    def repairs(
        self,
        instance: DatabaseInstance,
        seed_tracker: Optional[ViolationTracker] = None,
    ) -> List[DatabaseInstance]:
        """The ``≤_D``-minimal consistent candidates (Definition 7)."""

        if self._method == PARALLEL_METHOD:
            minimal = self._repairs_parallel(instance)
            _metrics.absorb_repair_statistics(self.statistics)
            return minimal
        candidates = self.candidates(instance, seed_tracker=seed_tracker)
        started = _clock.now()
        with _trace.span("repair.minimality", candidates=len(candidates)):
            minimal, comparisons = _minimal_under_leq_d_counted(instance, candidates)
        self.statistics.minimality_seconds = _clock.now() - started
        self.statistics.leq_d_comparisons = comparisons
        self.statistics.repairs_found = len(minimal)
        _metrics.absorb_repair_statistics(self.statistics)
        return minimal


def minimal_under_leq_d(
    original: DatabaseInstance, candidates: Sequence[DatabaseInstance]
) -> List[DatabaseInstance]:
    """The candidates not strictly dominated (``<_D``) by another candidate."""

    minimal, _ = _minimal_under_leq_d_counted(original, candidates)
    return minimal


#: A null-atom coverage signature: (predicate, arity, non-null positions).
_CoverSignature = Tuple[str, int, Tuple[int, ...]]


class DeltaMinimality:
    """``≤_D`` comparison machinery over precomputed candidate deltas.

    Each delta is split into its null-free part (condition (a) of
    Definition 6 is then one subset check) and its null atoms, which are
    matched against per-candidate coverage tables keyed by (predicate,
    arity, non-null positions) → projected values — turning the
    O(|∆|²) rescan of condition (b) into an indexed lookup.

    The class is constructed from the deltas alone so that the parallel
    minimality filter can rebuild identical contexts inside worker
    processes and check disjoint index ranges (:meth:`dominated` only
    reads shared-by-construction state plus a per-context lazy cache).
    """

    def __init__(self, deltas: Sequence[FrozenSet[Fact]]):
        self.deltas: List[FrozenSet[Fact]] = list(deltas)
        count = len(self.deltas)
        self.plain: List[FrozenSet[Fact]] = [
            frozenset(fact for fact in d if not fact.has_null()) for d in self.deltas
        ]
        self.null_atoms: List[Tuple[Fact, ...]] = [
            tuple(fact for fact in d if fact.has_null()) for d in self.deltas
        ]
        self.signatures: Set[_CoverSignature] = {
            (fact.predicate, fact.arity, fact.non_null_positions())
            for atoms in self.null_atoms
            for fact in atoms
        }
        self.by_relation: Dict[Tuple[str, int], List[_CoverSignature]] = {}
        for signature in self.signatures:
            self.by_relation.setdefault((signature[0], signature[1]), []).append(
                signature
            )
        self._cover_cache: List[Optional[Dict]] = [None] * count
        #: Pairwise ``≤_D`` checks performed through this context.
        self.comparisons = 0

    def _cover(self, index: int) -> Dict:
        """The candidate's coverage table, built lazily in one delta pass."""

        table = self._cover_cache[index]
        if table is None:
            table = {signature: {} for signature in self.signatures}
            for fact in self.deltas[index]:
                for signature in self.by_relation.get((fact.predicate, fact.arity), ()):
                    table[signature].setdefault(
                        tuple(fact.values[p] for p in signature[2]), []
                    ).append(fact)
            self._cover_cache[index] = table
        return table

    def leq(self, first: int, second: int) -> bool:
        """``candidate[first] ≤_D candidate[second]`` on the stored deltas."""

        self.comparisons += 1
        if not self.plain[first] <= self.deltas[second]:
            return False
        for fact in self.null_atoms[first]:
            signature = (fact.predicate, fact.arity, fact.non_null_positions())
            bucket = self._cover(second)[signature].get(
                tuple(fact.values[p] for p in signature[2]), ()
            )
            if not any(candidate not in self.deltas[first] for candidate in bucket):
                return False
        return True

    def dominated(self, index: int) -> bool:
        """Is the candidate strictly ``<_D``-dominated by any other?"""

        return any(
            other != index and self.leq(other, index) and not self.leq(index, other)
            for other in range(len(self.deltas))
        )


def minimal_flags_counted(
    deltas: Sequence[FrozenSet[Fact]],
) -> Tuple[List[bool], int]:
    """Per-candidate minimality flags plus the number of pairwise checks.

    The in-process filter over one :class:`DeltaMinimality` context.
    (The parallel filter's worker-side slicing lives in
    :func:`repro.core.parallel._minimality_run`, which reuses a
    process-local context across its slice instead.)
    """

    context = DeltaMinimality(deltas)
    flags = [not context.dominated(index) for index in range(len(context.deltas))]
    return flags, context.comparisons


def minimal_flags_for_deltas(deltas: Sequence[FrozenSet[Fact]]) -> List[bool]:
    """True per index iff the candidate is not strictly ``<_D``-dominated."""

    flags, _ = minimal_flags_counted(deltas)
    return flags


def _minimal_under_leq_d_counted(
    original: DatabaseInstance, candidates: Sequence[DatabaseInstance]
) -> Tuple[List[DatabaseInstance], int]:
    """``≤_D``-minimality via :class:`DeltaMinimality` (single context)."""

    count = len(candidates)
    if count <= 1:
        return list(candidates), 0
    context = DeltaMinimality(
        [original.symmetric_difference(candidate) for candidate in candidates]
    )
    minimal = [
        candidate
        for index, candidate in enumerate(candidates)
        if not context.dominated(index)
    ]
    return minimal, context.comparisons


def repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    max_states: Optional[int] = 200_000,
) -> List[DatabaseInstance]:
    """Convenience wrapper: the repairs of *instance* w.r.t. *constraints*."""

    return RepairEngine(constraints, max_states=max_states).repairs(instance)


# --------------------------------------------------------------------------- Proposition 1
def restricted_domain(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> FrozenSet[Constant]:
    """``adom(D) ∪ const(IC) ∪ {null}``: the domain repairs live in (Proposition 1)."""

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    return frozenset(
        set(instance.active_domain()) | set(constraint_set.constants()) | {NULL}
    )


def within_restricted_domain(
    original: DatabaseInstance,
    repaired: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> bool:
    """Check Proposition 1(a) for a candidate repair."""

    allowed = restricted_domain(original, constraints)
    return all(
        value in allowed or is_null(value)
        for fact in repaired.facts()
        for value in fact.values
    )


# --------------------------------------------------------------------------- brute force
def brute_force_repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    max_insertable_atoms: int = 14,
) -> List[DatabaseInstance]:
    """Reference implementation of Definition 7 by exhaustive enumeration.

    Enumerates every instance over the restricted domain of Proposition 1
    whose facts are either original facts or atoms built from that domain,
    keeps the consistent ones and filters them through ``≤_D``-minimality.
    Exponential — only usable for very small instances; the property-based
    tests use it to validate :class:`RepairEngine`.
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    domain = sorted(restricted_domain(instance, constraint_set), key=lambda v: repr(v))

    # Candidate atoms: every atom over the constrained predicates and the
    # predicates of the instance, with values from the restricted domain.
    predicates: Dict[str, int] = {}
    for pred in instance.predicates:
        predicates[pred] = instance.schema.arity(pred)
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            continue
        for atom in constraint.body + constraint.head_atoms:
            predicates.setdefault(atom.predicate, atom.arity)

    insertable: List[Fact] = []
    for pred, arity in sorted(predicates.items()):
        for values in itertools.product(domain, repeat=arity):
            fact = Fact(pred, values)
            if fact not in instance:
                insertable.append(fact)
    if len(insertable) > max_insertable_atoms:
        raise ValueError(
            f"brute-force enumeration would consider {len(insertable)} insertable atoms; "
            f"the limit is {max_insertable_atoms}"
        )

    original_facts = list(instance.facts())
    consistent: List[DatabaseInstance] = []
    for keep_mask in itertools.product((False, True), repeat=len(original_facts)):
        kept = [fact for fact, keep in zip(original_facts, keep_mask) if keep]
        for insert_mask in itertools.product((False, True), repeat=len(insertable)):
            added = [fact for fact, add in zip(insertable, insert_mask) if add]
            candidate = DatabaseInstance.from_facts(
                kept + added, schema=instance.schema
            )
            if is_consistent(candidate, constraint_set):
                consistent.append(candidate)
    return minimal_under_leq_d(instance, consistent)
