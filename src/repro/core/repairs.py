"""Null-introducing database repairs (Definitions 6–7, Proposition 1).

A repair of ``D`` w.r.t. ``IC`` is an instance over the same schema that
satisfies ``IC`` under ``|=_N`` and is ``≤_D``-minimal, where ``≤_D``
(Definition 6) compares instances through their symmetric difference with
``D`` and treats atoms containing ``null`` specially: an atom with nulls
in the difference of ``D'`` only requires *some* atom with the same
non-null part in the difference of ``D''``.  This makes a repair that
inserts ``Q(a, null)`` strictly preferable to one that inserts
``Q(a, b)`` for an arbitrary domain constant ``b``, which is how the
paper regains finitely many repairs and decidability of CQA.

The enumeration engine mirrors the ground repair-program rules: it picks a
ground violation and branches over its possible fixes — delete one of the
participating antecedent facts, or insert one of the consequent atoms with
``null`` in the existentially quantified positions — until the instance is
consistent, and finally filters the candidates through ``≤_D``-minimality.
A tuple inserted along a branch is never deleted on the same branch and
vice versa (the analogue of the program denial ``← P(x̄, ta), P(x̄, fa)``),
which guarantees termination because the universe of candidate atoms is
finite (Proposition 1).

For non-conflicting constraint sets (the paper's standing assumption, see
:meth:`repro.constraints.ic.ConstraintSet.is_non_conflicting`) this
computes exactly the repairs of Definition 7; a brute-force reference
enumerator over the restricted domain is provided for cross-validation on
tiny instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, NULL, is_null
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core.satisfaction import Violation, all_violations, is_consistent


# --------------------------------------------------------------------------- ≤_D
def delta(original: DatabaseInstance, other: DatabaseInstance) -> FrozenSet[Fact]:
    """``∆(D, D')``: the symmetric difference as a set of facts."""

    return original.symmetric_difference(other)


def _null_atom_covered(
    fact: Fact, delta_other: FrozenSet[Fact], delta_self: FrozenSet[Fact]
) -> bool:
    """Condition (b) of Definition 6 for one atom with nulls."""

    non_null = fact.non_null_positions()
    for candidate in delta_other:
        if candidate.predicate != fact.predicate or candidate.arity != fact.arity:
            continue
        if candidate in delta_self:
            continue
        if all(candidate.values[i] == fact.values[i] for i in non_null):
            return True
    return False


def leq_d(
    original: DatabaseInstance,
    first: DatabaseInstance,
    second: DatabaseInstance,
) -> bool:
    """``first ≤_D second`` (Definition 6), with ``D = original``."""

    delta_first = delta(original, first)
    delta_second = delta(original, second)
    for fact in delta_first:
        if not fact.has_null():
            if fact not in delta_second:
                return False
        else:
            if not _null_atom_covered(fact, delta_second, delta_first):
                return False
    return True


def lt_d(
    original: DatabaseInstance,
    first: DatabaseInstance,
    second: DatabaseInstance,
) -> bool:
    """``first <_D second``: ``first ≤_D second`` but not ``second ≤_D first``."""

    return leq_d(original, first, second) and not leq_d(original, second, first)


# --------------------------------------------------------------------------- fixes
def deletion_fixes(violation: Violation) -> List[Fact]:
    """The antecedent facts whose deletion resolves *violation*."""

    seen: Set[Fact] = set()
    ordered: List[Fact] = []
    for fact in violation.body_facts:
        if fact not in seen:
            seen.add(fact)
            ordered.append(fact)
    return ordered


def insertion_fixes(violation: Violation) -> List[Fact]:
    """The consequent atoms whose insertion resolves *violation*.

    Universal variables take their value from the violation's assignment,
    constants stay, and existential variables are filled with ``null`` —
    the paper's way of repairing referential constraints without picking an
    arbitrary domain value.  NOT-NULL and denial/check constraints have no
    insertion fixes.
    """

    constraint = violation.constraint
    if isinstance(constraint, NotNullConstraint):
        return []
    assignment = violation.assignment
    fixes: List[Fact] = []
    for atom in constraint.head_atoms:
        values: List[Constant] = []
        for term in atom.terms:
            if is_variable(term):
                values.append(assignment.get(term, NULL))
            else:
                values.append(term)
        fixes.append(Fact(atom.predicate, values))
    return fixes


# --------------------------------------------------------------------------- engine
class RepairSearchBudgetExceeded(RuntimeError):
    """Raised when the repair search exceeds its configured state budget."""


@dataclass
class RepairStatistics:
    """Counters describing one repair enumeration (used by the benchmarks)."""

    states_explored: int = 0
    candidates_found: int = 0
    repairs_found: int = 0
    dead_branches: int = 0


class RepairEngine:
    """Enumerate the repairs of Definition 7 for a fixed constraint set."""

    def __init__(
        self,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
        max_states: Optional[int] = 200_000,
    ):
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._max_states = max_states
        self.statistics = RepairStatistics()

    @property
    def constraints(self) -> ConstraintSet:
        """The constraint set the engine repairs against."""

        return self._constraints

    # ------------------------------------------------------------------ search
    def candidates(self, instance: DatabaseInstance) -> List[DatabaseInstance]:
        """All consistent instances reachable by resolving violations.

        The result is a superset of the repairs; :meth:`repairs` filters it
        through ``≤_D``-minimality.
        """

        self.statistics = RepairStatistics()
        found: Dict[FrozenSet[Fact], DatabaseInstance] = {}
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()

        def explore(
            current: DatabaseInstance,
            inserted: FrozenSet[Fact],
            deleted: FrozenSet[Fact],
        ) -> None:
            state_key = (inserted, deleted)
            if state_key in visited:
                return
            visited.add(state_key)
            self.statistics.states_explored += 1
            if self._max_states is not None and self.statistics.states_explored > self._max_states:
                raise RepairSearchBudgetExceeded(
                    f"repair search exceeded {self._max_states} states; "
                    "raise max_states or simplify the instance"
                )

            violations = all_violations(current, self._constraints)
            if not violations:
                key = current.fact_set()
                if key not in found:
                    found[key] = current.copy()
                    self.statistics.candidates_found += 1
                return

            violation = min(
                violations,
                key=lambda v: (repr(v.constraint), tuple(f.sort_key() for f in v.body_facts)),
            )
            branched = False
            for fact in deletion_fixes(violation):
                if fact in inserted:
                    continue  # the program denial: never undo an insertion
                next_instance = current.copy()
                next_instance.discard(fact)
                branched = True
                explore(next_instance, inserted, deleted | {fact})
            for fact in insertion_fixes(violation):
                if fact in deleted or fact in current:
                    continue
                next_instance = current.copy()
                next_instance.add(fact)
                branched = True
                explore(next_instance, inserted | {fact}, deleted)
            if not branched:
                self.statistics.dead_branches += 1

        explore(instance.copy(), frozenset(), frozenset())
        return list(found.values())

    def repairs(self, instance: DatabaseInstance) -> List[DatabaseInstance]:
        """The ``≤_D``-minimal consistent candidates (Definition 7)."""

        candidates = self.candidates(instance)
        minimal = minimal_under_leq_d(instance, candidates)
        self.statistics.repairs_found = len(minimal)
        return minimal


def minimal_under_leq_d(
    original: DatabaseInstance, candidates: Sequence[DatabaseInstance]
) -> List[DatabaseInstance]:
    """The candidates not strictly dominated (``<_D``) by another candidate."""

    minimal: List[DatabaseInstance] = []
    for candidate in candidates:
        dominated = any(
            other is not candidate and lt_d(original, other, candidate)
            for other in candidates
        )
        if not dominated:
            minimal.append(candidate)
    return minimal


def repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    max_states: Optional[int] = 200_000,
) -> List[DatabaseInstance]:
    """Convenience wrapper: the repairs of *instance* w.r.t. *constraints*."""

    return RepairEngine(constraints, max_states=max_states).repairs(instance)


# --------------------------------------------------------------------------- Proposition 1
def restricted_domain(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> FrozenSet[Constant]:
    """``adom(D) ∪ const(IC) ∪ {null}``: the domain repairs live in (Proposition 1)."""

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    return frozenset(
        set(instance.active_domain()) | set(constraint_set.constants()) | {NULL}
    )


def within_restricted_domain(
    original: DatabaseInstance,
    repaired: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> bool:
    """Check Proposition 1(a) for a candidate repair."""

    allowed = restricted_domain(original, constraints)
    return all(
        value in allowed or is_null(value)
        for fact in repaired.facts()
        for value in fact.values
    )


# --------------------------------------------------------------------------- brute force
def brute_force_repairs(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    max_insertable_atoms: int = 14,
) -> List[DatabaseInstance]:
    """Reference implementation of Definition 7 by exhaustive enumeration.

    Enumerates every instance over the restricted domain of Proposition 1
    whose facts are either original facts or atoms built from that domain,
    keeps the consistent ones and filters them through ``≤_D``-minimality.
    Exponential — only usable for very small instances; the property-based
    tests use it to validate :class:`RepairEngine`.
    """

    constraint_set = (
        constraints if isinstance(constraints, ConstraintSet) else ConstraintSet(list(constraints))
    )
    domain = sorted(restricted_domain(instance, constraint_set), key=lambda v: repr(v))

    # Candidate atoms: every atom over the constrained predicates and the
    # predicates of the instance, with values from the restricted domain.
    predicates: Dict[str, int] = {}
    for pred in instance.predicates:
        predicates[pred] = instance.schema.arity(pred)
    for constraint in constraint_set:
        if isinstance(constraint, NotNullConstraint):
            continue
        for atom in constraint.body + constraint.head_atoms:
            predicates.setdefault(atom.predicate, atom.arity)

    insertable: List[Fact] = []
    for pred, arity in sorted(predicates.items()):
        for values in itertools.product(domain, repeat=arity):
            fact = Fact(pred, values)
            if fact not in instance:
                insertable.append(fact)
    if len(insertable) > max_insertable_atoms:
        raise ValueError(
            f"brute-force enumeration would consider {len(insertable)} insertable atoms; "
            f"the limit is {max_insertable_atoms}"
        )

    original_facts = list(instance.facts())
    consistent: List[DatabaseInstance] = []
    for keep_mask in itertools.product((False, True), repeat=len(original_facts)):
        kept = [fact for fact, keep in zip(original_facts, keep_mask) if keep]
        for insert_mask in itertools.product((False, True), repeat=len(insertable)):
            added = [fact for fact, add in zip(insertable, insert_mask) if add]
            candidate = DatabaseInstance.from_facts(
                kept + added, schema=instance.schema
            )
            if is_consistent(candidate, constraint_set):
                consistent.append(candidate)
    return minimal_under_leq_d(instance, consistent)
