"""Consistent query answering (Definition 8, Theorems 2–3).

A ground tuple ``t̄`` is a *consistent answer* to a query ``Q(x̄)`` in ``D``
w.r.t. ``IC`` iff ``t̄`` is an answer to ``Q`` in every repair of ``D``;
for a boolean query the consistent answer is *yes* iff the sentence holds
in every repair.  Five evaluation strategies are provided, each a
registered engine of :mod:`repro.engines`:

* ``method="direct"`` — enumerate the repairs with the repair engine of
  :mod:`repro.core.repairs` and intersect the per-repair answer sets;
* ``method="program"`` — compute the repairs as the stable models of the
  repair program ``Π(D, IC)`` (cautious reasoning over the program, as the
  paper proposes) and intersect the same way;
* ``method="rewriting"`` — rewrite the query into a null-aware
  first-order query evaluated once on ``D`` (no repairs materialised;
  polynomial time) via :mod:`repro.rewriting`.  Raises
  :class:`repro.rewriting.RewritingUnsupportedError` outside the
  tractable fragment;
* ``method="sqlite"`` — the same rewriting compiled to SQL and evaluated
  entirely inside SQLite (same applicability as ``"rewriting"``);
* ``method="independent"`` — plain evaluation for queries statically
  proven constraint-independent (no constraint touches any predicate the
  query reads; diagnostic ``I302`` of :mod:`repro.analysis`).  Raises
  :class:`repro.analysis.QueryNotIndependentError` otherwise;
* ``method="auto"`` — let the cost-based planner of
  :mod:`repro.rewriting.planner` choose: the independence fast path when
  it is proven, else the rewriting whenever it applies, otherwise repair
  enumeration.  Never raises ``RewritingUnsupportedError``.

All strategies return the same answers; the benchmarks compare their
cost.  Query evaluation inside a repair uses the ``|=^q_N`` convention
described in :mod:`repro.logic.queries` (``null`` as an ordinary constant
by default, SQL-style unknown comparisons on request).

The functions below are the original functional API, kept as thin
wrappers over a throwaway :class:`repro.session.ConsistentDatabase`; a
long-lived session amortises planning, rewriting, violation tracking and
repair enumeration across calls, which these one-shot wrappers cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import trace as _trace
from repro.relational.domain import Constant
from repro.relational.instance import DatabaseInstance
from repro.constraints.ic import AnyConstraint, ConstraintSet
from repro.logic.queries import Query

if TYPE_CHECKING:
    from repro.rewriting.planner import CQAPlan


AnswerTuple = Tuple[Constant, ...]

#: The evaluation strategies accepted by the ``method`` parameter (the
#: built-in engine names; :func:`repro.engines.available_engines` is the
#: live registry, which third-party engines may extend).
CQA_METHODS = ("direct", "program", "rewriting", "independent", "auto", "sqlite")


@dataclass
class CQAResult:
    """The outcome of one consistent-query-answering computation.

    For the enumeration methods ``repair_count`` is exact and
    ``per_repair_answer_counts`` lists the answer-set size per repair.
    For the rewriting-based methods no repairs are materialised:
    ``repair_count`` is the conflict-graph *estimate* (flagged by
    ``repair_count_estimated``; ``-1`` when the caller asked to skip the
    estimate) and ``per_repair_answer_counts`` is empty.
    """

    answers: FrozenSet[AnswerTuple]
    repair_count: int
    per_repair_answer_counts: List[int] = field(default_factory=list)
    method: str = "direct"
    repair_count_estimated: bool = False
    plan: Optional["CQAPlan"] = None  #: the CQAPlan when ``method="auto"`` was used

    @property
    def certain(self) -> bool:
        """For boolean queries: True iff the empty tuple is a consistent answer."""

        return () in self.answers


def result_from_repairs(
    repairs: Sequence[DatabaseInstance],
    query: Query,
    null_is_unknown: bool = False,
    method: str = "direct",
) -> CQAResult:
    """Intersect the per-repair answer sets into a :class:`CQAResult`.

    The shared back half of every repair-enumerating engine.  An empty
    repair list only happens with conflicting NNCs (a non-conflicting
    constraint set always has at least one repair, Proposition 1), in
    which case nothing is certain.
    """

    if not repairs:
        return CQAResult(answers=frozenset(), repair_count=0, method=method)

    with _trace.span("answers.assemble") as sp:
        if sp:
            sp.add(repairs=len(repairs), query=str(query))
        per_repair: List[FrozenSet[AnswerTuple]] = []
        if query.is_boolean:
            for repair in repairs:
                holds = query.holds(repair, null_is_unknown=null_is_unknown)
                per_repair.append(frozenset({()}) if holds else frozenset())
        else:
            for repair in repairs:
                per_repair.append(query.answers(repair, null_is_unknown=null_is_unknown))

        answers = set(per_repair[0])
        for answer_set in per_repair[1:]:
            answers &= answer_set
        if sp:
            sp.add(answers=len(answers))
    return CQAResult(
        answers=frozenset(answers),
        repair_count=len(repairs),
        per_repair_answer_counts=[len(a) for a in per_repair],
        method=method,
    )


def consistent_answers_report(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    estimate_repairs: bool = True,
    repair_mode: str = "incremental",
    workers: int = 0,
    deadline: Optional[float] = None,
) -> CQAResult:
    """Full report: consistent answers plus repair statistics.

    Args:
        instance: the (possibly inconsistent) database.
        constraints: the integrity constraints.
        query: the conjunctive or first-order query.
        method: the engine name (:data:`CQA_METHODS` or any registered
            third-party engine).
        null_is_unknown: evaluate comparisons with SQL-style unknowns
            instead of treating ``null`` as an ordinary constant.
        max_states: repair-search state budget
            (:class:`repro.core.repairs.RepairSearchBudgetExceeded`
            beyond it).
        estimate_repairs: only affects the rewriting-based strategies,
            where the repair count is a conflict-graph estimate that
            costs one extra pass; the answer-only wrappers disable it.
        repair_mode: the direct engine's violation-evaluation method
            (:data:`repro.core.repairs.ALL_REPAIR_METHODS`); every mode
            returns the same repairs, so this only affects cost —
            benchmarks E12 and E14 compare them.
        workers: processes for ``repair_mode="parallel"`` (``<= 1``
            runs the same decomposition inline).
        deadline: wall-clock seconds for the whole request; past it the
            typed :class:`repro.errors.DeadlineExceededError` is raised
            (exact surfaces never return a silently partial answer set).

    Returns:
        A :class:`CQAResult` with the answers and repair statistics.

    >>> from repro.relational.instance import DatabaseInstance
    >>> from repro.constraints.parser import parse_constraint, parse_query
    >>> instance = DatabaseInstance.from_dict(
    ...     {"Course": [(21, "C15"), (34, "C18")], "Student": [(21, "Ann")]})
    >>> ric = parse_constraint("Course(i, c) -> Student(i, n)")
    >>> report = consistent_answers_report(
    ...     instance, [ric], parse_query("ans(c) <- Course(i, c)"))
    >>> (sorted(report.answers), report.repair_count)
    ([('C15',)], 2)
    """

    from repro.session import ConsistentDatabase

    session = ConsistentDatabase(instance, constraints, copy=False, method=method)
    return session.report(
        query,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        estimate_repairs=estimate_repairs,
        repair_mode=repair_mode,
        workers=workers,
        deadline=deadline,
    )


def consistent_answers(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    repair_mode: str = "incremental",
    workers: int = 0,
    deadline: Optional[float] = None,
) -> FrozenSet[AnswerTuple]:
    """The consistent answers to *query* in *instance* w.r.t. *constraints*.

    The answer-only projection of :func:`consistent_answers_report`
    (same parameters; the repair-count estimate is skipped).

    >>> from repro.relational.instance import DatabaseInstance
    >>> from repro.constraints.parser import parse_constraint, parse_query
    >>> instance = DatabaseInstance.from_dict(
    ...     {"Emp": [("e1", "sales"), ("e1", "hr"), ("e2", "hr")]})
    >>> key = parse_constraint("Emp(e, d), Emp(e, f) -> d = f")
    >>> sorted(consistent_answers(
    ...     instance, [key], parse_query("ans(e) <- Emp(e, d)")))
    [('e1',), ('e2',)]
    """

    return consistent_answers_report(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        estimate_repairs=False,
        repair_mode=repair_mode,
        workers=workers,
        deadline=deadline,
    ).answers


def is_consistent_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    candidate: Sequence[Constant],
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    repair_mode: str = "incremental",
    workers: int = 0,
) -> bool:
    """Decision version of CQA: is *candidate* an answer in every repair?

    Same parameters as :func:`consistent_answers` plus the candidate
    tuple.  (A long-lived session additionally offers
    ``certain(..., anytime=True)``, which stops at the first refuting
    repair instead of materialising the full answer set.)

    >>> from repro.relational.instance import DatabaseInstance
    >>> from repro.constraints.parser import parse_constraint, parse_query
    >>> instance = DatabaseInstance.from_dict(
    ...     {"Emp": [("e1", "sales"), ("e1", "hr")]})
    >>> key = parse_constraint("Emp(e, d), Emp(e, f) -> d = f")
    >>> is_consistent_answer(
    ...     instance, [key], parse_query("ans(d) <- Emp(e, d)"), ("sales",))
    False
    """

    return tuple(candidate) in consistent_answers(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        repair_mode=repair_mode,
        workers=workers,
    )


def consistent_boolean_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    repair_mode: str = "incremental",
    workers: int = 0,
) -> bool:
    """Consistent answer to a boolean query: *yes* iff it holds in every repair.

    Same parameters as :func:`consistent_answers`; an inconsistent
    constraint set with no repairs at all (possible only with
    conflicting NOT-NULL constraints) answers *no*.

    >>> from repro.relational.instance import DatabaseInstance
    >>> from repro.constraints.parser import parse_constraint, parse_query
    >>> instance = DatabaseInstance.from_dict(
    ...     {"Emp": [("e1", "sales"), ("e1", "hr")]})
    >>> key = parse_constraint("Emp(e, d), Emp(e, f) -> d = f")
    >>> consistent_boolean_answer(
    ...     instance, [key], parse_query("ans() <- Emp(e, d)"))
    True
    """

    result = consistent_answers_report(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        estimate_repairs=False,
        repair_mode=repair_mode,
        workers=workers,
    )
    if result.repair_count == 0 and not result.repair_count_estimated:
        return False
    return result.certain
