"""Consistent query answering (Definition 8, Theorems 2–3).

A ground tuple ``t̄`` is a *consistent answer* to a query ``Q(x̄)`` in ``D``
w.r.t. ``IC`` iff ``t̄`` is an answer to ``Q`` in every repair of ``D``;
for a boolean query the consistent answer is *yes* iff the sentence holds
in every repair.  Four evaluation strategies are provided:

* ``method="direct"`` — enumerate the repairs with the repair engine of
  :mod:`repro.core.repairs` and intersect the per-repair answer sets;
* ``method="program"`` — compute the repairs as the stable models of the
  repair program ``Π(D, IC)`` (cautious reasoning over the program, as the
  paper proposes) and intersect the same way;
* ``method="rewriting"`` — rewrite the query into a null-aware
  first-order query evaluated once on ``D`` (no repairs materialised;
  polynomial time) via :mod:`repro.rewriting`.  Raises
  :class:`repro.rewriting.RewritingUnsupportedError` outside the
  tractable fragment;
* ``method="auto"`` — let the cost-based planner of
  :mod:`repro.rewriting.planner` choose: the rewriting whenever it
  applies, otherwise the cheaper enumeration strategy.  Never raises
  ``RewritingUnsupportedError``.

All strategies return the same answers; the benchmarks compare their
cost.  Query evaluation inside a repair uses the ``|=^q_N`` convention
described in :mod:`repro.logic.queries` (``null`` as an ordinary constant
by default, SQL-style unknown comparisons on request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relational.domain import Constant
from repro.relational.instance import DatabaseInstance
from repro.constraints.ic import AnyConstraint, ConstraintSet
from repro.logic.queries import Query
from repro.core.repairs import RepairEngine
from repro.core.repair_program import program_repairs


AnswerTuple = Tuple[Constant, ...]

#: The evaluation strategies accepted by the ``method`` parameter.
CQA_METHODS = ("direct", "program", "rewriting", "auto")


@dataclass
class CQAResult:
    """The outcome of one consistent-query-answering computation.

    For the enumeration methods ``repair_count`` is exact and
    ``per_repair_answer_counts`` lists the answer-set size per repair.
    For ``method="rewriting"`` no repairs are materialised:
    ``repair_count`` is the conflict-graph *estimate* (flagged by
    ``repair_count_estimated``; ``-1`` when the caller asked to skip the
    estimate) and ``per_repair_answer_counts`` is empty.
    """

    answers: FrozenSet[AnswerTuple]
    repair_count: int
    per_repair_answer_counts: List[int] = field(default_factory=list)
    method: str = "direct"
    repair_count_estimated: bool = False
    plan: Optional[object] = None  #: the CQAPlan when ``method="auto"`` was used

    @property
    def certain(self) -> bool:
        """For boolean queries: True iff the empty tuple is a consistent answer."""

        return () in self.answers


def _as_constraint_set(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> ConstraintSet:
    if isinstance(constraints, ConstraintSet):
        return constraints
    return ConstraintSet(list(constraints))


def _repairs_for(
    instance: DatabaseInstance,
    constraints: ConstraintSet,
    method: str,
    max_states: Optional[int],
    repair_mode: str = "incremental",
) -> List[DatabaseInstance]:
    if method == "direct":
        return RepairEngine(
            constraints, max_states=max_states, method=repair_mode
        ).repairs(instance)
    if method == "program":
        return program_repairs(instance, constraints).repairs
    raise ValueError(
        f"unknown CQA method {method!r}; use one of {', '.join(CQA_METHODS)}"
    )


def _rewriting_result(
    instance: DatabaseInstance,
    constraints: ConstraintSet,
    query: Query,
    null_is_unknown: bool,
    rewritten=None,
    plan: Optional[object] = None,
    estimate_repairs: bool = True,
) -> CQAResult:
    """Evaluate through the first-order rewriting (no repairs materialised).

    The conflict-graph repair estimate costs one extra pass over the
    instance; callers that only want the answers skip it
    (``estimate_repairs=False``), leaving ``repair_count == -1``.
    """

    from repro.rewriting import ConflictGraph, rewrite_query

    if rewritten is None:
        rewritten = rewrite_query(query, constraints)
    answers = rewritten.answers(instance, null_is_unknown=null_is_unknown)
    if estimate_repairs:
        estimate = ConflictGraph.build(instance, constraints).estimated_repair_count()
    else:
        estimate = -1
    return CQAResult(
        answers=answers,
        repair_count=estimate,
        method="rewriting",
        repair_count_estimated=True,
        plan=plan,
    )


def consistent_answers_report(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    estimate_repairs: bool = True,
    repair_mode: str = "incremental",
) -> CQAResult:
    """Full report: consistent answers plus repair statistics.

    *estimate_repairs* only affects the rewriting strategy, where the
    repair count is a conflict-graph estimate that costs one extra pass
    over the instance; the answer-only wrappers disable it.
    *repair_mode* selects the direct engine's violation-evaluation method
    (:data:`repro.core.repairs.REPAIR_METHODS`); all modes return the
    same repairs, so this only affects cost — benchmark E12 compares
    them.
    """

    constraint_set = _as_constraint_set(constraints)

    if method == "rewriting":
        return _rewriting_result(
            instance,
            constraint_set,
            query,
            null_is_unknown,
            estimate_repairs=estimate_repairs,
        )
    if method == "auto":
        from repro.rewriting import plan_cqa

        plan = plan_cqa(instance, constraint_set, query, max_states=max_states)
        if plan.method == "rewriting":
            return _rewriting_result(
                instance,
                constraint_set,
                query,
                null_is_unknown,
                rewritten=plan.rewritten,
                plan=plan,
                estimate_repairs=estimate_repairs,
            )
        result = consistent_answers_report(
            instance,
            constraint_set,
            query,
            method=plan.method,
            null_is_unknown=null_is_unknown,
            max_states=max_states,
            repair_mode=repair_mode,
        )
        result.plan = plan
        return result

    repairs = _repairs_for(
        instance, constraint_set, method, max_states, repair_mode=repair_mode
    )
    if not repairs:
        # A non-conflicting constraint set always has at least one repair
        # (Proposition 1); an empty repair set can only happen with
        # conflicting NNCs, in which case nothing is certain.
        return CQAResult(answers=frozenset(), repair_count=0, method=method)

    per_repair: List[FrozenSet[AnswerTuple]] = []
    if query.is_boolean:
        for repair in repairs:
            holds = query.holds(repair, null_is_unknown=null_is_unknown)
            per_repair.append(frozenset({()}) if holds else frozenset())
    else:
        for repair in repairs:
            per_repair.append(query.answers(repair, null_is_unknown=null_is_unknown))

    answers = set(per_repair[0])
    for answer_set in per_repair[1:]:
        answers &= answer_set
    return CQAResult(
        answers=frozenset(answers),
        repair_count=len(repairs),
        per_repair_answer_counts=[len(a) for a in per_repair],
        method=method,
    )


def consistent_answers(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
    repair_mode: str = "incremental",
) -> FrozenSet[AnswerTuple]:
    """The consistent answers to *query* in *instance* w.r.t. *constraints*."""

    return consistent_answers_report(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        estimate_repairs=False,
        repair_mode=repair_mode,
    ).answers


def is_consistent_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    candidate: Sequence[Constant],
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
) -> bool:
    """Decision version of CQA: is *candidate* an answer in every repair?"""

    return tuple(candidate) in consistent_answers(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
    )


def consistent_boolean_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
) -> bool:
    """Consistent answer to a boolean query: *yes* iff it holds in every repair."""

    result = consistent_answers_report(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
        estimate_repairs=False,
    )
    if result.repair_count == 0 and not result.repair_count_estimated:
        return False
    return result.certain
