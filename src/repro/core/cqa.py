"""Consistent query answering (Definition 8, Theorems 2–3).

A ground tuple ``t̄`` is a *consistent answer* to a query ``Q(x̄)`` in ``D``
w.r.t. ``IC`` iff ``t̄`` is an answer to ``Q`` in every repair of ``D``;
for a boolean query the consistent answer is *yes* iff the sentence holds
in every repair.  Two evaluation strategies are provided:

* ``method="direct"`` — enumerate the repairs with the repair engine of
  :mod:`repro.core.repairs` and intersect the per-repair answer sets;
* ``method="program"`` — compute the repairs as the stable models of the
  repair program ``Π(D, IC)`` (cautious reasoning over the program, as the
  paper proposes) and intersect the same way.

Both strategies return the same answers; the benchmarks compare their
cost.  Query evaluation inside a repair uses the ``|=^q_N`` convention
described in :mod:`repro.logic.queries` (``null`` as an ordinary constant
by default, SQL-style unknown comparisons on request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relational.domain import Constant
from repro.relational.instance import DatabaseInstance
from repro.constraints.ic import AnyConstraint, ConstraintSet
from repro.logic.queries import Query
from repro.core.repairs import RepairEngine
from repro.core.repair_program import program_repairs


AnswerTuple = Tuple[Constant, ...]


@dataclass
class CQAResult:
    """The outcome of one consistent-query-answering computation."""

    answers: FrozenSet[AnswerTuple]
    repair_count: int
    per_repair_answer_counts: List[int] = field(default_factory=list)
    method: str = "direct"

    @property
    def certain(self) -> bool:
        """For boolean queries: True iff the empty tuple is a consistent answer."""

        return () in self.answers


def _as_constraint_set(
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> ConstraintSet:
    if isinstance(constraints, ConstraintSet):
        return constraints
    return ConstraintSet(list(constraints))


def _repairs_for(
    instance: DatabaseInstance,
    constraints: ConstraintSet,
    method: str,
    max_states: Optional[int],
) -> List[DatabaseInstance]:
    if method == "direct":
        return RepairEngine(constraints, max_states=max_states).repairs(instance)
    if method == "program":
        return program_repairs(instance, constraints).repairs
    raise ValueError(f"unknown CQA method {method!r}; use 'direct' or 'program'")


def consistent_answers_report(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
) -> CQAResult:
    """Full report: consistent answers plus repair statistics."""

    constraint_set = _as_constraint_set(constraints)
    repairs = _repairs_for(instance, constraint_set, method, max_states)
    if not repairs:
        # A non-conflicting constraint set always has at least one repair
        # (Proposition 1); an empty repair set can only happen with
        # conflicting NNCs, in which case nothing is certain.
        return CQAResult(answers=frozenset(), repair_count=0, method=method)

    per_repair: List[FrozenSet[AnswerTuple]] = []
    if query.is_boolean:
        for repair in repairs:
            holds = query.holds(repair, null_is_unknown=null_is_unknown)
            per_repair.append(frozenset({()}) if holds else frozenset())
    else:
        for repair in repairs:
            per_repair.append(query.answers(repair, null_is_unknown=null_is_unknown))

    answers = set(per_repair[0])
    for answer_set in per_repair[1:]:
        answers &= answer_set
    return CQAResult(
        answers=frozenset(answers),
        repair_count=len(repairs),
        per_repair_answer_counts=[len(a) for a in per_repair],
        method=method,
    )


def consistent_answers(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
    max_states: Optional[int] = 200_000,
) -> FrozenSet[AnswerTuple]:
    """The consistent answers to *query* in *instance* w.r.t. *constraints*."""

    return consistent_answers_report(
        instance,
        constraints,
        query,
        method=method,
        null_is_unknown=null_is_unknown,
        max_states=max_states,
    ).answers


def is_consistent_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    candidate: Sequence[Constant],
    method: str = "direct",
    null_is_unknown: bool = False,
) -> bool:
    """Decision version of CQA: is *candidate* an answer in every repair?"""

    return tuple(candidate) in consistent_answers(
        instance, constraints, query, method=method, null_is_unknown=null_is_unknown
    )


def consistent_boolean_answer(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    query: Query,
    method: str = "direct",
    null_is_unknown: bool = False,
) -> bool:
    """Consistent answer to a boolean query: *yes* iff it holds in every repair."""

    result = consistent_answers_report(
        instance, constraints, query, method=method, null_is_unknown=null_is_unknown
    )
    if result.repair_count == 0:
        return False
    return result.certain
