"""Core contribution of the paper: null-aware satisfaction, repairs, CQA.

The sub-modules follow the paper's structure:

* :mod:`repro.core.relevant` — relevant attributes ``A(ψ)`` (Definition 2);
* :mod:`repro.core.projection` — projected instances ``D^A`` (Definition 3);
* :mod:`repro.core.transform` — the rewritten constraint ``ψ_N`` (formula (4));
* :mod:`repro.core.satisfaction` — the satisfaction relation ``|=_N``
  (Definitions 4–5) and violation enumeration;
* :mod:`repro.core.semantics` — the alternative semantics compared in
  Example 4 (classical, liberal/[10], SQL simple-/partial-/full-match);
* :mod:`repro.core.repairs` — the null-introducing repair semantics
  (Definitions 6–7, Proposition 1);
* :mod:`repro.core.classic` — the classical repair semantics of
  Arenas–Bertossi–Chomicki 1999, used as a baseline;
* :mod:`repro.core.cqa` — consistent query answering (Definition 8);
* :mod:`repro.core.repair_program` — the disjunctive repair programs of
  Definition 9 and the model/repair correspondence (Theorem 4);
* :mod:`repro.core.hcf` — bilateral predicates and the head-cycle-free
  optimisation (Section 6, Theorem 5, Corollary 1).
"""

from repro.core.relevant import relevant_attributes, relevant_positions
from repro.core.projection import project_instance
from repro.core.transform import null_aware_formula, classical_formula
from repro.core.satisfaction import (
    Violation,
    all_violations,
    is_consistent,
    satisfies,
    violations,
)
from repro.core.semantics import Semantics
from repro.core.repairs import (
    ALL_REPAIR_METHODS,
    PARALLEL_METHOD,
    REPAIR_METHODS,
    RepairEngine,
    RepairStatistics,
    ViolationIndex,
    ViolationTracker,
    delta,
    leq_d,
    leq_deltas,
    lt_d,
    repairs,
    violation_choice_key,
)
from repro.core.parallel import (
    AnytimeRepairStream,
    ParallelRepairSearch,
    exclusion_safe,
)
from repro.core.classic import classic_repairs
from repro.core.cqa import (
    CQA_METHODS,
    CQAResult,
    consistent_answers,
    consistent_answers_report,
    consistent_boolean_answer,
    is_consistent_answer,
)
from repro.core.repair_program import build_repair_program, database_from_model, program_repairs
from repro.core.hcf import bilateral_predicates, guarantees_hcf

__all__ = [
    "relevant_attributes",
    "relevant_positions",
    "project_instance",
    "null_aware_formula",
    "classical_formula",
    "Violation",
    "satisfies",
    "violations",
    "all_violations",
    "is_consistent",
    "Semantics",
    "ALL_REPAIR_METHODS",
    "PARALLEL_METHOD",
    "REPAIR_METHODS",
    "RepairEngine",
    "RepairStatistics",
    "ViolationIndex",
    "ViolationTracker",
    "AnytimeRepairStream",
    "ParallelRepairSearch",
    "exclusion_safe",
    "violation_choice_key",
    "repairs",
    "delta",
    "leq_d",
    "leq_deltas",
    "lt_d",
    "classic_repairs",
    "CQA_METHODS",
    "CQAResult",
    "consistent_answers",
    "consistent_answers_report",
    "consistent_boolean_answer",
    "is_consistent_answer",
    "build_repair_program",
    "database_from_model",
    "program_repairs",
    "bilateral_predicates",
    "guarantees_hcf",
]
