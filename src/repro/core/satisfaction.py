"""The satisfaction relation ``|=_N`` (Definitions 4–5) and violation enumeration.

Two implementations are provided:

* the **faithful** one, :func:`satisfies_via_projection`, literally builds
  ``D^{A(ψ)}`` and ``ψ_N`` and evaluates the formula with the generic
  first-order evaluator — this is Definition 4 verbatim;
* the **direct** one, :func:`violations`, enumerates the ground violations
  of a constraint without materialising the projection.  It is what the
  repair engine and the benchmarks use, because it also reports *which*
  antecedent facts participate in each violation (the information the
  repair search branches on, mirroring the ground repair-program rules).

The two are equivalent and cross-validated by the test-suite:
``satisfies(D, ψ)`` (no violations) iff ``satisfies_via_projection(D, ψ)``.

The direct enumeration executes **compiled plans** by default: each
constraint is lowered once (per process) by :mod:`repro.compile.kernel`
into a join plan with a precomputed atom schedule, slot-based bindings
and specialised per-atom matchers, and every call after that runs the
plan — through the per-plan generated executor of
:mod:`repro.compile.codegen` and, for full sweeps over a stable
unbudgeted instance, the column-at-a-time batch evaluator of
:mod:`repro.relational.columnar` (both on by default; see
``docs/kernel-codegen.md`` for the fallback knobs).  Two interpreted
paths survive for cross-validation: the original
nested-loop joins behind ``naive=True``, and the per-call index-backed
join (:func:`indexed_body_matches` + :func:`violation_filter`) behind
``compiled=False``.  All three produce the same violation sets.  The
seeded variants (:func:`seeded_violations`,
:func:`violations_under_assignment`) restrict the join to matches
involving one given fact / partial assignment through the compiled
**delta plans** — the incremental violation maintenance of
:mod:`repro.core.repairs` is built on them, and so is the parallel
frontier search of :mod:`repro.core.parallel`: every worker process
keeps its own :class:`~repro.core.repairs.ViolationTracker` warm by
replaying task deltas through exactly these seeded updates, so a task
never pays a full violation sweep.

(Paper cross-reference: Definition 4 is
:func:`satisfies_via_projection`, Definition 3's witness-relevant
positions are :func:`witness_positions` — see ``docs/paper-map.md`` for
the full map.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.obs import trace as _trace
from repro.relational.domain import Constant, is_null
from repro.resilience import budget as _budget
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom, BuiltinEvaluationError, Comparison
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.compile.matchers import extend_match
from repro.core.projection import project_for_constraint
from repro.core.relevant import relevant_body_variables, relevant_positions
from repro.core.transform import null_aware_formula
from repro.logic.evaluation import holds


Assignment = Dict[Variable, Constant]


@dataclass(frozen=True)
class Violation:
    """One ground violation of a constraint.

    ``bindings`` is the assignment of the antecedent variables obtained by
    matching the antecedent atoms against concrete facts; ``body_facts``
    are those facts, in the order of the constraint's antecedent atoms.
    For a NOT-NULL constraint the assignment is empty and ``body_facts``
    holds the single offending fact.
    """

    constraint: AnyConstraint
    bindings: Tuple[Tuple[Variable, Constant], ...]
    body_facts: Tuple[Fact, ...]

    @cached_property
    def assignment(self) -> Assignment:
        """The variable assignment as a dictionary (memoised).

        The repair search reads this in its innermost loop;
        ``cached_property`` stores the dict in the instance ``__dict__``,
        which bypasses the frozen-dataclass ``__setattr__`` guard and does
        not participate in equality or hashing.  Treat the result as
        read-only — it is shared between accesses.
        """

        return dict(self.bindings)

    def __hash__(self) -> int:  # cached: violations are hashed per search state
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.constraint, self.bindings, self.body_facts))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        assign = ", ".join(f"{v.name}={value!r}" for v, value in self.bindings)
        return f"Violation({self.constraint!r}; {assign}; facts={list(self.body_facts)})"


# --------------------------------------------------------------------------- joins
def body_matches(
    instance: DatabaseInstance,
    body: Sequence[Atom],
    naive: bool = False,
    compiled: Optional[bool] = None,
) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
    """Enumerate the matches of the antecedent atoms against the instance.

    ``null`` is treated as an ordinary constant (it joins with itself),
    exactly as in the evaluation of ``ψ_N`` over ``D^A`` (Example 12).

    By default the body is lowered once into a compiled join plan
    (:func:`repro.compile.kernel.compiled_body` — schedule, slots and
    per-atom matchers fixed at compile time) and every call executes the
    plan.  ``compiled=False`` selects the per-call index-backed
    interpreter, ``naive=True`` the original left-to-right nested-loop
    join — both kept as reference paths for cross-validation.  All
    paths produce the same set of matches (``body_facts`` always in
    antecedent-atom order); only the enumeration order may differ.
    """

    if compiled is None:
        compiled = not naive
    if naive:
        yield from _body_matches_naive(instance, body)
    elif compiled:
        from repro.compile.kernel import compiled_body

        yield from compiled_body(tuple(body)).iter_matches(instance)
    else:
        yield from indexed_body_matches(instance, body)


def _body_matches_naive(
    instance: DatabaseInstance, body: Sequence[Atom]
) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
    def extend(
        index: int, assignment: Assignment, facts: Tuple[Fact, ...]
    ) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
        if index == len(body):
            yield dict(assignment), facts
            return
        atom = body[index]
        for row in instance.tuples(atom.predicate):
            extended = _match_atom(atom, row, assignment)
            if extended is None:
                continue
            yield from extend(index + 1, extended, facts + (Fact(atom.predicate, row),))

    yield from extend(0, {}, ())


def indexed_body_matches(
    instance: DatabaseInstance,
    body: Sequence[Atom],
    initial: Optional[Mapping[Variable, Constant]] = None,
    fixed: Optional[Mapping[int, Fact]] = None,
) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
    """Index-backed enumeration of the antecedent matches.

    *initial* seeds the assignment (e.g. with the universal variables a
    deleted witness used to pin down); *fixed* pins body atoms (by index)
    to concrete facts — the basis of the incremental seeded enumeration.
    At every step the join extends the **most-bound** remaining atom
    (most positions already determined, then smallest relation), probing
    the per-position hash indexes instead of scanning.
    """

    count = len(body)
    facts: List[Optional[Fact]] = [None] * count
    assignment: Assignment = dict(initial) if initial else {}
    remaining = []
    for index, atom in enumerate(body):
        if fixed is not None and index in fixed:
            fact = fixed[index]
            extended = _match_atom(atom, fact.values, assignment)
            if extended is None:
                return
            assignment = extended
            facts[index] = fact
        else:
            remaining.append(index)

    def extend(
        remaining: Sequence[int], assignment: Assignment
    ) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
        if not remaining:
            yield dict(assignment), tuple(facts)  # type: ignore[arg-type]
            return
        best = min(
            remaining,
            key=lambda i: (
                -len(body[i].bound_positions(assignment)),
                instance.row_count(body[i].predicate),
                i,
            ),
        )
        atom = body[best]
        rest = [i for i in remaining if i != best]
        bound = atom.bound_positions(assignment)
        for row in instance.tuples_matching(atom.predicate, bound):
            extended = _match_atom(atom, row, assignment)
            if extended is None:
                continue
            facts[best] = Fact(atom.predicate, row)
            yield from extend(rest, extended)
        facts[best] = None

    yield from extend(remaining, assignment)


#: The one atom-matching routine, shared with :mod:`repro.logic.queries`
#: and the rewriting residues so null/constant/repeated-variable
#: semantics can never drift between the layers (the compiled kernel
#: specialises the same semantics at compile time).
_match_atom = extend_match


def row_witnesses_atom(
    atom: Atom,
    row: Tuple[Constant, ...],
    assignment: Mapping[Variable, Constant],
    positions: Sequence[int],
) -> bool:
    """Does *row* match *atom* on *positions* under *assignment*?

    Universal variables take their value from *assignment*; existential
    variables merely have to be consistent across their occurrences within
    the atom (Example 13); constants must match literally.  Positions not
    listed are ignored — they were projected away.
    """

    if len(row) != atom.arity:
        return False
    existential_binding: Dict[Variable, Constant] = {}
    for position in positions:
        term = atom.terms[position]
        value = row[position]
        if is_variable(term):
            if term in assignment:
                if assignment[term] != value:
                    return False
            else:
                bound = existential_binding.get(term)
                if bound is None and term not in existential_binding:
                    existential_binding[term] = value
                elif bound != value:
                    return False
        elif term != value:
            return False
    return True


def _head_atom_has_witness(
    instance: DatabaseInstance,
    atom: Atom,
    assignment: Assignment,
    positions: Sequence[int],
    naive: bool = False,
) -> bool:
    """Does some tuple of ``atom.predicate`` match the atom on *positions*?

    The indexed path probes the hash index on the witness positions whose
    value is already pinned (universal variables and constants) and only
    re-checks the existential-consistency part per candidate row.
    """

    if naive:
        rows: Iterable[Tuple[Constant, ...]] = instance.tuples(atom.predicate)
    else:
        bound = atom.bound_positions(assignment, positions)
        rows = instance.tuples_matching(atom.predicate, bound)
    for row in rows:
        if row_witnesses_atom(atom, row, assignment, positions):
            return True
    return False


def _comparison_disjunction_holds(
    comparisons: Sequence[Comparison], assignment: Assignment
) -> bool:
    """Evaluate the built-in disjunction ``ϕ`` under *assignment*.

    Every variable of ``ϕ`` is relevant, so when this is reached none of
    them is ``null``; a comparison that still cannot be evaluated (e.g.
    a string compared with a number) counts as not satisfied.
    """

    for comparison in comparisons:
        try:
            if comparison.evaluate(assignment):
                return True
        except BuiltinEvaluationError:
            continue
    return False


# --------------------------------------------------------------------------- |=_N
def violations(
    instance: DatabaseInstance,
    constraint: AnyConstraint,
    naive: bool = False,
    compiled: Optional[bool] = None,
) -> List[Violation]:
    """All ground violations of *constraint* in *instance* under ``|=_N``.

    The default executes the constraint's compiled plan
    (:func:`repro.compile.kernel.compiled_constraint` — lowered once per
    process).  ``compiled=False`` selects the per-call index-backed
    interpreter and ``naive=True`` the unindexed nested-loop joins (the
    original reference implementation).  All three return the same
    violations, possibly in a different order.
    """

    if isinstance(constraint, NotNullConstraint):
        return not_null_violations(instance, constraint)
    if compiled is None:
        compiled = not naive
    if compiled and not naive:
        from repro.compile.kernel import compiled_constraint

        return compiled_constraint(constraint).violations(instance)
    return _ic_violations(instance, constraint, naive=naive)


def not_null_violations(
    instance: DatabaseInstance, constraint: NotNullConstraint
) -> List[Violation]:
    """Facts of the constrained predicate with ``null`` at the protected position."""

    found: List[Violation] = []
    for fact in instance.facts(constraint.predicate):
        if constraint.position < fact.arity and is_null(fact.values[constraint.position]):
            found.append(Violation(constraint, (), (fact,)))
    return found


@lru_cache(maxsize=4096)
def _cached_relevant_positions(
    constraint: IntegrityConstraint,
) -> Dict[str, Tuple[int, ...]]:
    """Memoised :func:`relevant_positions` (treated as read-only by callers)."""

    return relevant_positions(constraint)


@lru_cache(maxsize=4096)
def _cached_relevant_body_variables(
    constraint: IntegrityConstraint,
) -> FrozenSet[Variable]:
    """Memoised :func:`relevant_body_variables`."""

    return relevant_body_variables(constraint)


def witness_positions(constraint: IntegrityConstraint, atom: Atom) -> Tuple[int, ...]:
    """The positions a witness for *atom* must agree on (Definition 3's kept set)."""

    positions = _cached_relevant_positions(constraint)
    return positions.get(atom.predicate, tuple(range(atom.arity)))


def violation_filter(
    instance: DatabaseInstance,
    constraint: IntegrityConstraint,
    matches: Iterable[Tuple[Assignment, Tuple[Fact, ...]]],
    naive: bool = False,
) -> Iterator[Violation]:
    """Keep the body *matches* that are genuine ground violations.

    Applies, in order, the relevant-null guard, the built-in disjunction
    and the head-atom witness check — the three conditions of ``|=_N`` —
    and yields a :class:`Violation` for every match that fails all of
    them.  Shared by the full, seeded and incremental enumerations.
    """

    relevant_vars = _cached_relevant_body_variables(constraint)
    for assignment, facts in matches:
        if any(is_null(assignment[v]) for v in relevant_vars):
            continue  # a null in a relevant antecedent attribute: satisfied
        if _comparison_disjunction_holds(constraint.head_comparisons, assignment):
            continue
        witnessed = False
        for atom in constraint.head_atoms:
            kept = witness_positions(constraint, atom)
            if _head_atom_has_witness(instance, atom, assignment, kept, naive=naive):
                witnessed = True
                break
        if witnessed:
            continue
        bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
        yield Violation(constraint, bindings, facts)


def _ic_violations(
    instance: DatabaseInstance, constraint: IntegrityConstraint, naive: bool = False
) -> List[Violation]:
    # The interpreted reference paths: compiled=False keeps the body
    # join interpreted too, so cross-validation against the kernel is
    # never circular.
    return list(
        violation_filter(
            instance,
            constraint,
            body_matches(instance, constraint.body, naive=naive, compiled=False),
            naive=naive,
        )
    )


# ------------------------------------------------------------------- seeded
def seeded_violations(
    instance: DatabaseInstance,
    constraint: IntegrityConstraint,
    fact: Fact,
    compiled: bool = True,
) -> Iterator[Violation]:
    """The violations of *constraint* whose body involves *fact*.

    Pins *fact* at every antecedent atom of the same predicate in turn
    and joins the remaining atoms; matches using the fact at several
    occurrences are deduplicated.  After inserting *fact* this yields
    exactly the violations created by the insertion.  The default runs
    the constraint's compiled **delta plans** (one per body occurrence,
    schedule seeded from the pinned atom's bindings);
    ``compiled=False`` keeps the per-call interpreted enumeration as
    the cross-validation reference.
    """

    if compiled:
        from repro.compile.kernel import compiled_constraint

        yield from compiled_constraint(constraint).seeded_violations(instance, fact)
        return
    seen: Set[Violation] = set()
    for index, atom in enumerate(constraint.body):
        if atom.predicate != fact.predicate or atom.arity != fact.arity:
            continue
        matches = indexed_body_matches(instance, constraint.body, fixed={index: fact})
        for violation in violation_filter(instance, constraint, matches):
            if violation not in seen:
                seen.add(violation)
                yield violation


def violations_under_assignment(
    instance: DatabaseInstance,
    constraint: IntegrityConstraint,
    partial: Mapping[Variable, Constant],
    compiled: bool = True,
) -> Iterator[Violation]:
    """The violations of *constraint* compatible with the *partial* assignment.

    Used after deleting a fact of a consequent predicate: the partial
    assignment pins the universal variables the deleted witness agreed
    on, so only the body matches that may have lost their witness are
    re-examined.  The default runs a compiled binding-pattern plan
    (memoised per set of pre-bound variables); a partial assignment
    mentioning a non-body variable — possible only through direct API
    use, never from the tracker — falls back to the interpreter, whose
    reported bindings include such extra variables.
    """

    if compiled:
        from repro.compile.kernel import compiled_constraint

        unit = compiled_constraint(constraint)
        if unit.covers_partial(partial):
            yield from unit.violations_under(instance, partial)
            return
    matches = indexed_body_matches(instance, constraint.body, initial=partial)
    yield from violation_filter(instance, constraint, matches)


def satisfies(instance: DatabaseInstance, constraint: AnyConstraint) -> bool:
    """``D |=_N ψ``: no violations under the null-aware semantics."""

    return not violations(instance, constraint)


def satisfies_via_projection(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> bool:
    """Definition 4 verbatim: ``D^{A(ψ)} |= ψ_N`` via the generic evaluator."""

    projected = project_for_constraint(instance, constraint)
    formula = null_aware_formula(constraint)
    return holds(projected, formula)


def all_violations(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    naive: bool = False,
    compiled: Optional[bool] = None,
) -> List[Violation]:
    """Violations of every constraint, in constraint order.

    ``naive``/``compiled`` select the evaluation path per constraint
    exactly as in :func:`violations`.
    """

    budget = _budget.active()
    with _trace.span("violations.enumerate") as sp:
        found: List[Violation] = []
        count = 0
        for constraint in constraints:
            if budget:  # cooperative deadline/cancel check, once per constraint
                budget.checkpoint()
            found.extend(
                violations(instance, constraint, naive=naive, compiled=compiled)
            )
            count += 1
        if sp:
            sp.add(constraints=count, violations=len(found))
    return found


def is_consistent(
    instance: DatabaseInstance, constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> bool:
    """``D |=_N IC``: the instance satisfies every constraint."""

    return all(satisfies(instance, constraint) for constraint in constraints)
