"""The satisfaction relation ``|=_N`` (Definitions 4–5) and violation enumeration.

Two implementations are provided:

* the **faithful** one, :func:`satisfies_via_projection`, literally builds
  ``D^{A(ψ)}`` and ``ψ_N`` and evaluates the formula with the generic
  first-order evaluator — this is Definition 4 verbatim;
* the **direct** one, :func:`violations`, enumerates the ground violations
  of a constraint without materialising the projection.  It is what the
  repair engine and the benchmarks use, because it also reports *which*
  antecedent facts participate in each violation (the information the
  repair search branches on, mirroring the ground repair-program rules).

The two are equivalent and cross-validated by the test-suite:
``satisfies(D, ψ)`` (no violations) iff ``satisfies_via_projection(D, ψ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, is_null
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom, BuiltinEvaluationError, Comparison
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core.projection import project_for_constraint
from repro.core.relevant import relevant_body_variables, relevant_positions
from repro.core.transform import null_aware_formula
from repro.logic.evaluation import holds


Assignment = Dict[Variable, Constant]


@dataclass(frozen=True)
class Violation:
    """One ground violation of a constraint.

    ``bindings`` is the assignment of the antecedent variables obtained by
    matching the antecedent atoms against concrete facts; ``body_facts``
    are those facts, in the order of the constraint's antecedent atoms.
    For a NOT-NULL constraint the assignment is empty and ``body_facts``
    holds the single offending fact.
    """

    constraint: AnyConstraint
    bindings: Tuple[Tuple[Variable, Constant], ...]
    body_facts: Tuple[Fact, ...]

    @property
    def assignment(self) -> Assignment:
        """The variable assignment as a dictionary."""

        return dict(self.bindings)

    def __repr__(self) -> str:
        assign = ", ".join(f"{v.name}={value!r}" for v, value in self.bindings)
        return f"Violation({self.constraint!r}; {assign}; facts={list(self.body_facts)})"


# --------------------------------------------------------------------------- joins
def body_matches(
    instance: DatabaseInstance, body: Sequence[Atom]
) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
    """Enumerate the matches of the antecedent atoms against the instance.

    ``null`` is treated as an ordinary constant (it joins with itself),
    exactly as in the evaluation of ``ψ_N`` over ``D^A`` (Example 12).
    """

    def extend(
        index: int, assignment: Assignment, facts: Tuple[Fact, ...]
    ) -> Iterator[Tuple[Assignment, Tuple[Fact, ...]]]:
        if index == len(body):
            yield dict(assignment), facts
            return
        atom = body[index]
        for row in instance.tuples(atom.predicate):
            extended = _match_atom(atom, row, assignment)
            if extended is None:
                continue
            yield from extend(index + 1, extended, facts + (Fact(atom.predicate, row),))

    yield from extend(0, {}, ())


def _match_atom(
    atom: Atom, row: Tuple[Constant, ...], assignment: Assignment
) -> Optional[Assignment]:
    if len(row) != atom.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, row):
        if is_variable(term):
            if term in extended:
                if extended[term] != value:
                    return None
            else:
                extended[term] = value
        elif term != value:
            return None
    return extended


def _head_atom_has_witness(
    instance: DatabaseInstance,
    atom: Atom,
    assignment: Assignment,
    positions: Sequence[int],
) -> bool:
    """Does some tuple of ``atom.predicate`` match the atom on *positions*?

    Universal variables take their value from *assignment*; existential
    variables merely have to be consistent across their occurrences within
    the atom (Example 13); constants must match literally.  Positions not
    listed are ignored — they were projected away.
    """

    for row in instance.tuples(atom.predicate):
        if len(row) != atom.arity:
            continue
        existential_binding: Dict[Variable, Constant] = {}
        matched = True
        for position in positions:
            term = atom.terms[position]
            value = row[position]
            if is_variable(term):
                if term in assignment:
                    if assignment[term] != value:
                        matched = False
                        break
                else:
                    bound = existential_binding.get(term)
                    if bound is None and term not in existential_binding:
                        existential_binding[term] = value
                    elif bound != value:
                        matched = False
                        break
            elif term != value:
                matched = False
                break
        if matched:
            return True
    return False


def _comparison_disjunction_holds(
    comparisons: Sequence[Comparison], assignment: Assignment
) -> bool:
    """Evaluate the built-in disjunction ``ϕ`` under *assignment*.

    Every variable of ``ϕ`` is relevant, so when this is reached none of
    them is ``null``; a comparison that still cannot be evaluated (e.g.
    a string compared with a number) counts as not satisfied.
    """

    for comparison in comparisons:
        try:
            if comparison.evaluate(assignment):
                return True
        except BuiltinEvaluationError:
            continue
    return False


# --------------------------------------------------------------------------- |=_N
def violations(
    instance: DatabaseInstance, constraint: AnyConstraint
) -> List[Violation]:
    """All ground violations of *constraint* in *instance* under ``|=_N``."""

    if isinstance(constraint, NotNullConstraint):
        return not_null_violations(instance, constraint)
    return _ic_violations(instance, constraint)


def not_null_violations(
    instance: DatabaseInstance, constraint: NotNullConstraint
) -> List[Violation]:
    """Facts of the constrained predicate with ``null`` at the protected position."""

    found: List[Violation] = []
    for fact in instance.facts(constraint.predicate):
        if constraint.position < fact.arity and is_null(fact.values[constraint.position]):
            found.append(Violation(constraint, (), (fact,)))
    return found


def _ic_violations(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> List[Violation]:
    positions = relevant_positions(constraint)
    relevant_vars = relevant_body_variables(constraint)
    found: List[Violation] = []
    for assignment, facts in body_matches(instance, constraint.body):
        if any(is_null(assignment[v]) for v in relevant_vars):
            continue  # a null in a relevant antecedent attribute: satisfied
        if _comparison_disjunction_holds(constraint.head_comparisons, assignment):
            continue
        witnessed = False
        for atom in constraint.head_atoms:
            kept = positions.get(atom.predicate, tuple(range(atom.arity)))
            if _head_atom_has_witness(instance, atom, assignment, kept):
                witnessed = True
                break
        if witnessed:
            continue
        bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
        found.append(Violation(constraint, bindings, facts))
    return found


def satisfies(instance: DatabaseInstance, constraint: AnyConstraint) -> bool:
    """``D |=_N ψ``: no violations under the null-aware semantics."""

    return not violations(instance, constraint)


def satisfies_via_projection(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> bool:
    """Definition 4 verbatim: ``D^{A(ψ)} |= ψ_N`` via the generic evaluator."""

    projected = project_for_constraint(instance, constraint)
    formula = null_aware_formula(constraint)
    return holds(projected, formula)


def all_violations(
    instance: DatabaseInstance, constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> List[Violation]:
    """Violations of every constraint, in constraint order."""

    found: List[Violation] = []
    for constraint in constraints:
        found.extend(violations(instance, constraint))
    return found


def is_consistent(
    instance: DatabaseInstance, constraints: Union[ConstraintSet, Iterable[AnyConstraint]]
) -> bool:
    """``D |=_N IC``: the instance satisfies every constraint."""

    return all(satisfies(instance, constraint) for constraint in constraints)
