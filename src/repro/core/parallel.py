"""Parallel, anytime repair search over the mutate/undo DFS frontier.

The incremental engine of :mod:`repro.core.repairs` explores one
violation-resolution tree depth-first with a single working instance.
This module splits that tree into **frontier tasks** — unexplored
subtree roots identified by their branch-index *path* from the root —
and executes them either inline (``workers <= 1``) or on a
``concurrent.futures.ProcessPoolExecutor``, one seeded
:class:`~repro.core.repairs.ViolationTracker` and one copy-on-write
instance per worker process.

Three properties make the result exactly interchangeable with the
sequential engines:

* **Deterministic decomposition.**  A task explores at most
  ``chunk_states`` states; whatever frontier it could not expand is
  *deferred* back to the scheduler as new tasks.  Which tasks exist and
  what each explores is a pure function of (instance, constraints,
  chunk budget) — worker scheduling only changes *when* a task runs,
  never what it computes.  Oversized tasks split again, so granularity
  adapts to the tree shape the way a work-stealing deque would.
* **Path-ordered merging.**  Every candidate is reported with the
  branch-index path of the state that produced it.  Sorting the merged
  candidates by path and keeping the lexicographically least occurrence
  of each fact set reproduces the *discovery order* of the sequential
  depth-first search (a DFS discovers every state at its
  lexicographically least reachable path), so ``method="parallel"``
  returns a bit-identical repair list to ``method="incremental"``.
* **Sibling-exclusion partitioning** (denial-only constraint sets).
  When no constraint has consequent atoms, every fix is a deletion of
  an original fact, and branch *i* of a violation can soundly exclude
  the fixes of branches ``< i`` from its whole subtree: a candidate
  missing fact ``f`` must delete ``f`` somewhere, so forbidding the
  deletion partitions the candidates of sibling subtrees.  Workers
  then never duplicate each other's states.  With consequent atoms
  (RICs/UICs) the exclusion is unsound — an inserted witness of one
  constraint can resolve another, making some candidates reachable
  only through mixed resolution orders — so subtrees may overlap and
  the path-ordered dedup does the reconciliation instead.

On top of the decomposition, :class:`AnytimeRepairStream` turns the
search into an **anytime** enumeration: a candidate ``C`` is provably a
repair *before the search finishes* once (a) no candidate found so far
strictly ``≤_D``-dominates it and (b) no open frontier task could ever
produce a dominator.  (b) is sound because a task's committed delta
``∆_f`` (its inserted and deleted facts) is contained in the delta of
every candidate below it: inserted facts are never deleted again and
deleted facts never return, so if ``∆_f`` already contains a null-free
atom outside ``∆(D, C)`` — or a null atom with no cover in ``∆(D, C)``
(Definition 6(b)) — nothing below ``f`` can be ``≤_D C``.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.constraints.ic import AnyConstraint, ConstraintSet, NotNullConstraint
from repro.errors import budget_error
from repro.obs import clock as _clock
from repro.obs import trace as _trace
from repro.resilience import budget as _budget
from repro.resilience import faults as _faults
from repro.resilience.budget import Budget, Degradation
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.core.repairs import (
    DeltaMinimality,
    RepairSearchBudgetExceeded,
    RepairStatistics,
    ViolationIndex,
    ViolationTracker,
    deletion_fixes,
    insertion_fixes,
    leq_deltas,
    minimal_flags_counted,
    minimal_flags_for_deltas,
    violation_choice_key,
)
from repro.relational import columnar as _columnar
from repro.relational.instance import DatabaseInstance, Fact

#: Branch-index path of a search state, relative to the search root.
Path = Tuple[int, ...]

#: Default number of states one task may explore before it must defer
#: the rest of its subtree back to the scheduler.
DEFAULT_CHUNK_STATES = 1024

#: How long the driver blocks on worker futures between budget checks —
#: bounds how stale a deadline/cancellation verdict can get while every
#: worker is deep inside a long task.
_BUDGET_POLL_SECONDS = 0.05

#: Coarse per-fact cost (bytes) used to charge candidate and frontier
#: deltas against a memory budget.  Deliberately rough: the budget is a
#: tripwire against unbounded accumulation, not an allocator.
_DELTA_COST = 96

_EMPTY_FACTS: FrozenSet[Fact] = frozenset()

#: ``REPRO_SHM=0`` in the environment disables shipping the base
#: instance to pool workers through ``multiprocessing.shared_memory``
#: (the pickled facts-tuple fallback is used instead).  Purely a
#: transport knob — answers are identical either way.
_SHM_FLAG = "REPRO_SHM"

#: ``REPRO_SHIP_AUDIT=1`` makes the driver measure the pickled size of
#: every shipped task/result payload — and of the un-encoded objects
#: they replace — into the ship-bytes fields of
#: :class:`~repro.core.repairs.RepairStatistics`.  Off by default: the
#: audit pays one extra pickle per shipment.
_AUDIT_FLAG = "REPRO_SHIP_AUDIT"


def _shm_enabled() -> bool:
    return os.environ.get(_SHM_FLAG, "") != "0"


def _ship_audit() -> bool:
    return os.environ.get(_AUDIT_FLAG, "") == "1"


def exclusion_safe(constraints: Union[ConstraintSet, Iterable[AnyConstraint]]) -> bool:
    """Can sibling subtrees soundly exclude each other's fixes?

    True iff no constraint has consequent atoms — i.e. every violation
    is repaired by deletions only (keys/FDs, denials, checks, NOT
    NULL).  See the module docstring for why consequent atoms break the
    partition argument.
    """

    for constraint in constraints:
        if isinstance(constraint, NotNullConstraint):
            continue
        if constraint.head_atoms:
            return False
    return True


@dataclass(frozen=True)
class FrontierTask:
    """One unexplored subtree of the repair search.

    ``inserted``/``deleted`` are the facts committed on the path from
    the search root to this state (the task's *delta* — a lower bound,
    under ``⊆``, of the delta of every candidate in the subtree).  The
    exclusion sets are only populated for denial-only constraint sets.
    """

    path: Path
    inserted: FrozenSet[Fact]
    deleted: FrozenSet[Fact]
    excluded_deletions: FrozenSet[Fact] = _EMPTY_FACTS
    excluded_insertions: FrozenSet[Fact] = _EMPTY_FACTS

    def delta(self) -> FrozenSet[Fact]:
        """The facts every candidate below this state must differ on."""

        return self.inserted | self.deleted


#: A discovered candidate: (path, inserted facts, deleted facts).  The
#: candidate's fact set is ``(D ∖ deleted) ∪ inserted`` and its delta is
#: ``inserted ∪ deleted`` — shipping the (usually tiny) delta across the
#: process boundary instead of the whole instance keeps result pickling
#: proportional to the repair distance, not the database size.
Candidate = Tuple[Path, FrozenSet[Fact], FrozenSet[Fact]]


@dataclass
class TaskResult:
    """What one executed task hands back to the scheduler.

    ``spans`` carries the task's trace, captured inside the worker
    process as picklable :class:`repro.obs.trace.SpanRecord` trees and
    shipped home with the candidate deltas; the driver re-parents them
    into its own trace (:func:`repro.obs.trace.attach`).  Empty unless
    tracing is enabled; tasks run inline record straight into the
    driver's tracer and ship nothing.
    """

    task: FrontierTask
    candidates: List[Candidate]
    deferred: List[FrontierTask]
    statistics: RepairStatistics
    spans: Tuple["_trace.SpanRecord", ...] = ()


# ----------------------------------------------------------------- wire format
#: A :class:`FrontierTask` on the wire: its path plus the four fact sets
#: encoded through the shared :class:`repro.relational.columnar.FactCodec`
#: — base-instance facts ship as small integers, inserted witnesses as
#: ``(predicate, values)`` pairs.  Both pool ends derive the codec
#: independently from the deterministic ``facts()`` order, so the
#: mapping itself is never shipped.
_TaskWire = Tuple[
    Path,
    Tuple["_columnar.FactToken", ...],
    Tuple["_columnar.FactToken", ...],
    Tuple["_columnar.FactToken", ...],
    Tuple["_columnar.FactToken", ...],
]

#: A :class:`TaskResult` on the wire.  The task itself never ships back
#: — the driver kept it (``in_flight``) and passes it to
#: :func:`_decode_result`.  Everything else is shipped relative to it:
#: paths as suffixes of the task's path (every state in a subtree
#: shares the root's prefix) and fact sets as differences against the
#: task's corresponding sets (the search only ever *grows* them down a
#: subtree, so the differences are exactly what the subtree added).
#: Statistics travel as a bare value tuple — a pickled dataclass would
#: repeat the class reference and every field name per result.
_ResultWire = Tuple[
    List[Tuple[Path, Tuple["_columnar.FactToken", ...], Tuple["_columnar.FactToken", ...]]],
    List[_TaskWire],
    Tuple[Any, ...],
    Tuple["_trace.SpanRecord", ...],
]


def _encode_statistics(statistics: RepairStatistics) -> Tuple[Any, ...]:
    return tuple(
        getattr(statistics, spec.name) for spec in fields(RepairStatistics)
    )


def _decode_statistics(values: Tuple[Any, ...]) -> RepairStatistics:
    return RepairStatistics(*values)


def _encode_task(codec: "_columnar.FactCodec", task: FrontierTask) -> _TaskWire:
    return (
        task.path,
        codec.encode_facts(task.inserted),
        codec.encode_facts(task.deleted),
        codec.encode_facts(task.excluded_deletions),
        codec.encode_facts(task.excluded_insertions),
    )


def _decode_task(codec: "_columnar.FactCodec", wire: _TaskWire) -> FrontierTask:
    path, inserted, deleted, excluded_deletions, excluded_insertions = wire
    return FrontierTask(
        path,
        codec.decode_facts(inserted),
        codec.decode_facts(deleted),
        codec.decode_facts(excluded_deletions),
        codec.decode_facts(excluded_insertions),
    )


def _encode_result(codec: "_columnar.FactCodec", result: TaskResult) -> _ResultWire:
    task = result.task
    prefix = len(task.path)
    encode = codec.encode_facts
    return (
        [
            (
                path[prefix:],
                encode(inserted - task.inserted),
                encode(deleted - task.deleted),
            )
            for path, inserted, deleted in result.candidates
        ],
        [
            (
                sub.path[prefix:],
                encode(sub.inserted - task.inserted),
                encode(sub.deleted - task.deleted),
                encode(sub.excluded_deletions - task.excluded_deletions),
                encode(sub.excluded_insertions - task.excluded_insertions),
            )
            for sub in result.deferred
        ],
        _encode_statistics(result.statistics),
        result.spans,
    )


def _decode_result(
    codec: "_columnar.FactCodec", wire: _ResultWire, task: FrontierTask
) -> TaskResult:
    candidates, deferred, statistics, spans = wire
    prefix = task.path
    decode = codec.decode_facts
    return TaskResult(
        task,
        [
            (
                prefix + path,
                task.inserted | decode(inserted),
                task.deleted | decode(deleted),
            )
            for path, inserted, deleted in candidates
        ],
        [
            FrontierTask(
                prefix + path,
                task.inserted | decode(inserted),
                task.deleted | decode(deleted),
                task.excluded_deletions | decode(excluded_deletions),
                task.excluded_insertions | decode(excluded_insertions),
            )
            for path, inserted, deleted, excluded_deletions, excluded_insertions in deferred
        ],
        _decode_statistics(statistics),
        spans,
    )


@dataclass
class SearchBatch:
    """One scheduler round: new results plus the still-open frontier."""

    candidates: List[Candidate]
    open_tasks: Tuple[FrontierTask, ...]
    states_explored: int  #: cumulative states across all finished tasks


class SearchContext:
    """A worker's private search state: instance, tracker, exclusion flag.

    One context is built per worker process (and one inline for
    ``workers <= 1``); it pays the full violation sweep once and then
    runs any number of tasks against the same working instance by
    replaying each task's delta before the bounded DFS and undoing it
    after — the same mutate/undo discipline the incremental engine
    uses, lifted to task granularity.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ViolationIndex, ConstraintSet, Iterable[AnyConstraint]],
        exclusions: Optional[bool] = None,
    ):
        self.index = (
            constraints
            if isinstance(constraints, ViolationIndex)
            else ViolationIndex(constraints)
        )
        self.working = instance.copy()
        self.tracker = ViolationTracker(self.working, self.index)
        self.exclusions = (
            exclusion_safe(self.index.constraints) if exclusions is None else exclusions
        )

    # ------------------------------------------------------------------ tasks
    def run_task(
        self,
        task: FrontierTask,
        budget: int,
        request_budget: Optional[Budget] = None,
    ) -> TaskResult:
        """Explore up to *budget* states of the task's subtree.

        Candidates are reported with their global path; the unexplored
        remainder of the subtree comes back as deferred tasks.  The
        working instance and tracker are restored exactly before
        returning, so contexts are reusable across tasks.

        *request_budget* is the request's resource envelope (a worker
        receives one rebuilt from the deadline seconds remaining at
        submit).  Exhaustion mid-task never raises here: the current
        state is *deferred* instead, exactly like a chunk-budget stop,
        so the open frontier the scheduler sees stays sound — the
        driver decides whether to raise or degrade.
        """

        budget = max(budget, 1)
        stats = RepairStatistics()
        updates_before = self.tracker.updates
        reevaluated_before = self.tracker.constraints_reevaluated
        candidates: List[Candidate] = []
        deferred: List[FrontierTask] = []
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()
        states_used = 0

        task_span = _trace.span("repair.task")
        if task_span:
            task_span.add(path=str(task.path), delta=len(task.delta()))
        cpu_started = _clock.cpu_now()
        replay: List[Tuple[str, Fact, object]] = []
        task_span.__enter__()
        try:
            for fact in sorted(task.deleted, key=Fact.sort_key):
                self.working.discard(fact)
                replay.append(("del", fact, self.tracker.notify_removed(fact)))
            for fact in sorted(task.inserted, key=Fact.sort_key):
                self.working.add(fact)
                replay.append(("ins", fact, self.tracker.notify_added(fact)))

            def explore(
                path: Path,
                inserted: FrozenSet[Fact],
                deleted: FrozenSet[Fact],
                excluded_deletions: FrozenSet[Fact],
                excluded_insertions: FrozenSet[Fact],
            ) -> None:
                nonlocal states_used
                state_key = (inserted, deleted)
                if state_key in visited:
                    return
                if states_used >= budget or (
                    request_budget is not None
                    and request_budget.exhausted() is not None
                ):
                    deferred.append(
                        FrontierTask(
                            path,
                            inserted,
                            deleted,
                            excluded_deletions,
                            excluded_insertions,
                        )
                    )
                    return
                visited.add(state_key)
                states_used += 1
                stats.states_explored += 1
                if request_budget is not None:
                    # Per-state accounting keeps a states/memory budget
                    # precise *within* a chunk (the driver only charges
                    # for results computed on other processes, so this
                    # never double-counts).
                    request_budget.charge_states(1)

                current = self.tracker.violations()
                if not current:
                    stats.candidates_found += 1
                    candidates.append((path, inserted, deleted))
                    return

                violation = min(current, key=violation_choice_key)
                branched = False
                branch = 0
                for fact in deletion_fixes(violation):
                    index = branch
                    branch += 1
                    if fact in inserted:  # the program denial: never undo an insertion
                        continue
                    if fact in excluded_deletions:
                        continue  # the candidate lives in an earlier sibling subtree
                    self.working.discard(fact)
                    delta = self.tracker.notify_removed(fact)
                    branched = True
                    explore(
                        path + (index,),
                        inserted,
                        deleted | {fact},
                        excluded_deletions,
                        excluded_insertions,
                    )
                    self.tracker.revert(delta)
                    self.working.add(fact)
                    if self.exclusions:
                        excluded_deletions = excluded_deletions | {fact}
                for fact in insertion_fixes(violation):
                    index = branch
                    branch += 1
                    if fact in deleted or fact in self.working:
                        continue
                    if fact in excluded_insertions:
                        continue
                    self.working.add(fact)
                    delta = self.tracker.notify_added(fact)
                    branched = True
                    explore(
                        path + (index,),
                        inserted | {fact},
                        deleted,
                        excluded_deletions,
                        excluded_insertions,
                    )
                    self.tracker.revert(delta)
                    self.working.discard(fact)
                    if self.exclusions:
                        excluded_insertions = excluded_insertions | {fact}
                if not branched:
                    stats.dead_branches += 1

            explore(
                task.path,
                task.inserted,
                task.deleted,
                task.excluded_deletions,
                task.excluded_insertions,
            )
        finally:
            for kind, fact, delta in reversed(replay):
                self.tracker.revert(delta)  # type: ignore[arg-type]
                if kind == "del":
                    self.working.add(fact)
                else:
                    self.working.discard(fact)
            stats.task_cpu_seconds = _clock.cpu_now() - cpu_started
            if task_span:
                task_span.add(
                    states=stats.states_explored,
                    candidates=stats.candidates_found,
                    deferred=len(deferred),
                )
            task_span.__exit__(None, None, None)
        stats.violation_updates = self.tracker.updates - updates_before
        stats.constraints_reevaluated = (
            self.tracker.constraints_reevaluated - reevaluated_before
        )
        return TaskResult(task, candidates, deferred, stats)


# --------------------------------------------------------------------------- workers
#: Per-process search context, built once by the pool initializer.
_WORKER_CONTEXT: Optional[SearchContext] = None

#: Per-process fact codec, derived from the rebuilt instance (identical
#: to the driver's: both number the deterministic ``facts()`` order).
_WORKER_CODEC: Optional["_columnar.FactCodec"] = None

#: The base instance on the wire: ``("shm", name, size)`` — a columnar
#: pack (:func:`repro.relational.columnar.pack_instance`) living in a
#: ``multiprocessing.shared_memory`` segment the driver owns — or the
#: ``("facts", tuple)`` pickle fallback.
_InstancePayload = Union[Tuple[str, str, int], Tuple[str, Tuple[Fact, ...]]]


def _attach_instance(payload: _InstancePayload) -> DatabaseInstance:
    """Rebuild the base instance from the initializer payload (worker side)."""

    if payload[0] == "shm":
        from multiprocessing import shared_memory

        _, name, size = payload
        # Python < 3.13 registers attached segments with the resource
        # tracker exactly like created ones (bpo-39959).  Pool workers
        # share the driver's tracker process, where registration is
        # set-semantics per name — the re-registration is a no-op and
        # the driver's unlink in ``close()`` clears it, so no
        # per-worker unregister is needed (and sending one would race
        # the other workers' attach messages).
        segment = shared_memory.SharedMemory(name=name)
        try:
            data = bytes(segment.buf[:size])
        finally:
            segment.close()
        return _columnar.unpack_instance(data)
    return DatabaseInstance.from_facts(payload[1])


def _worker_init(
    instance_payload: _InstancePayload,
    constraints: Tuple[AnyConstraint, ...],
    exclusions: bool,
    tracing: bool = False,
    fault_spec: Optional["_faults.FaultSpec"] = None,
) -> None:
    """Process-pool initializer: rebuild the instance, sweep violations once."""

    global _WORKER_CONTEXT, _WORKER_CODEC
    if tracing:
        _trace.enable()
    # Fork-started workers inherit the driver's tracer mid-request: its
    # recorded roots (which would ship back as duplicates) and its open
    # span stack (which would swallow this worker's spans as children of
    # a phantom parent).  Start from a clean tracer either way.
    _trace.reset()
    if _faults.armed() is not None:
        # Fork-started workers inherit the driver's delay-only injector;
        # start clean (re-armed below when this pool asked for chaos).
        _faults.disarm()
    instance = _attach_instance(instance_payload)
    _WORKER_CODEC = _columnar.FactCodec.from_instance(instance)
    _WORKER_CONTEXT = SearchContext(
        instance, ConstraintSet(list(constraints)), exclusions=exclusions
    )
    if fault_spec is not None:
        # Chaos harness: this worker draws (salted, seeded) faults at its
        # span boundaries — including kills, which it is allowed to serve.
        # Armed *after* the context build so every injected fault lands
        # during task execution (an initializer fault would break the
        # pool before it ever ran a task — real, but a different failure
        # than the scheduler-level tolerance this harness exercises).
        _faults.arm_worker(fault_spec)


def _worker_run(
    task_wire: _TaskWire, budget: int, deadline_remaining: Optional[float] = None
) -> _ResultWire:
    """Execute one (wire-encoded) task against the process-local context.

    *deadline_remaining* is the request deadline's remaining seconds at
    submit time — monotonic clocks share no epoch across processes, so
    the worker rebuilds a fresh :class:`Budget` from the remainder
    rather than comparing against the driver's absolute deadline.
    """

    assert _WORKER_CONTEXT is not None, "worker used before initialization"
    assert _WORKER_CODEC is not None, "worker used before initialization"
    task = _decode_task(_WORKER_CODEC, task_wire)
    request_budget = (
        Budget(deadline=max(deadline_remaining, 1e-6))
        if deadline_remaining is not None
        else None
    )
    result = _WORKER_CONTEXT.run_task(task, budget, request_budget=request_budget)
    if _trace.enabled():
        result.spans = _trace.capture_records()
    return _encode_result(_WORKER_CODEC, result)


# --------------------------------------------------------------------------- driver
class ParallelRepairSearch:
    """Schedule the frontier tasks of one repair search.

    ``workers <= 1`` executes every task inline, in FIFO order — fully
    deterministic, no processes, still anytime (batches surface as each
    task finishes).  ``workers >= 2`` runs the tasks on a process pool
    with up to ``2 × workers`` tasks in flight; which tasks exist and
    what each returns is deterministic either way (only batch arrival
    order varies).

    Aggregate counters accumulate into :attr:`statistics` via
    :meth:`RepairStatistics.merge` as tasks finish; ``states_explored``
    sums the per-task counts, so with overlapping subtrees (non
    denial-only constraints) it may exceed the sequential engines'
    unique-state count — the ``max_states`` budget applies to that sum.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
        *,
        workers: int = 0,
        max_states: Optional[int] = 200_000,
        chunk_states: int = DEFAULT_CHUNK_STATES,
        violation_index: Optional[ViolationIndex] = None,
        budget: Optional[Budget] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self._instance = instance
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._index = (
            violation_index
            if violation_index is not None
            else ViolationIndex(self._constraints)
        )
        self._workers = max(workers, 0)
        self._max_states = max_states
        self._chunk_states = max(chunk_states, 1)
        self._exclusions = exclusion_safe(self._constraints)
        self._request_budget = budget
        self._retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._executor: Optional[ProcessPoolExecutor] = None
        #: The driver-owned shared-memory segment holding the columnar
        #: instance pack, alive from first pool spawn until :meth:`close`
        #: (workers only attach; see ``_attach_instance``).
        self._shm: Optional[Any] = None
        #: Set when a ``degrade=True`` budget ran out mid-search: the
        #: batches yielded so far cover a sound *prefix* of the frontier
        #: and this record says why the rest was never explored.
        self.degradation: Optional[Degradation] = None
        self.statistics = RepairStatistics()

    @property
    def uses_exclusions(self) -> bool:
        """True when sibling-exclusion partitioning is active (denial-only)."""

        return self._exclusions

    def _instance_payload(self, audit: bool) -> "_InstancePayload":
        """The base-instance payload for the pool initializer.

        Preferred transport: pack the instance as interned columns
        (:func:`repro.relational.columnar.pack_instance`) into one
        driver-owned ``multiprocessing.shared_memory`` segment and ship
        only ``("shm", name, size)`` — every distinct constant pickles
        once, and respawned pools re-attach to the same segment instead
        of re-pickling the facts per worker.  ``REPRO_SHM=0`` (or any
        shared-memory failure, e.g. an unmounted ``/dev/shm``) falls
        back to the classic ``("facts", tuple)`` pickle; workers behave
        identically either way.
        """

        if audit:
            self.statistics.instance_ship_bytes_raw += len(
                pickle.dumps(tuple(self._instance.facts()), pickle.HIGHEST_PROTOCOL)
            )
        if _shm_enabled():
            try:
                from multiprocessing import shared_memory

                data = _columnar.pack_instance(self._instance)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(len(data), 1)
                )
                segment.buf[: len(data)] = data
            except Exception:
                pass
            else:
                self._shm = segment
                self.statistics.instance_ship_bytes += len(data)
                return ("shm", segment.name, len(data))
        facts = tuple(self._instance.facts())
        if audit:
            self.statistics.instance_ship_bytes += len(
                pickle.dumps(facts, pickle.HIGHEST_PROTOCOL)
            )
        return ("facts", facts)

    def batches(self) -> Iterator[SearchBatch]:
        """Run the search, yielding one :class:`SearchBatch` per finished task.

        Closing the generator early (e.g. an anytime consumer that
        short-circuited) shuts the pool down and cancels queued tasks.
        Raises :class:`RepairSearchBudgetExceeded` when the cumulative
        state count crosses ``max_states``.

        A request :class:`Budget` (the constructor's, else the ambient
        one) is checked between tasks: on exhaustion the generator
        either raises the typed error (strict) or — with
        ``degrade=True`` — records :attr:`degradation` and stops
        cleanly, leaving the batches yielded so far as a sound partial
        frontier.  Worker failures never surface to the consumer: a
        crashed pool is respawned with exponential backoff (tasks
        retried), and tasks that keep failing are quarantined and
        re-run inline — task results are pure functions of (task, chunk
        budget), so retries cannot change the answer.
        """

        budget = self._request_budget
        if budget is None:
            ambient = _budget.active()
            budget = ambient if ambient else None
        root = FrontierTask((), _EMPTY_FACTS, _EMPTY_FACTS)
        queue: deque[FrontierTask] = deque([root])
        open_tasks: Dict[Path, FrontierTask] = {root.path: root}
        total_states = 0
        started = _clock.now()

        def absorb(result: TaskResult, remote: bool = False) -> SearchBatch:
            nonlocal total_states
            total_states += result.statistics.states_explored
            self.statistics.merge(result.statistics)
            # Wall clock is the driver's elapsed time, never the sum of the
            # per-task CPU seconds merge() accumulates separately.
            self.statistics.search_seconds = _clock.now() - started
            if result.spans:
                _trace.attach(result.spans)
            del open_tasks[result.task.path]
            for sub_task in result.deferred:
                open_tasks[sub_task.path] = sub_task
                queue.append(sub_task)
            if budget is not None:
                if remote:
                    # Tasks run in this process charged the budget per
                    # state already (run_task holds the same object); a
                    # worker's charges landed on its ephemeral copy and
                    # are folded in here.
                    budget.charge_states(result.statistics.states_explored)
                # A coarse estimate of what this round pinned in driver
                # memory: candidate deltas plus deferred frontier roots.
                budget.charge_memory(
                    sum(
                        _DELTA_COST * (len(inserted) + len(deleted))
                        for _, inserted, deleted in result.candidates
                    )
                    + _DELTA_COST * sum(len(t.delta()) for t in result.deferred)
                )
            if self._max_states is not None and total_states > self._max_states:
                raise RepairSearchBudgetExceeded(
                    f"repair search exceeded {self._max_states} states; "
                    "raise max_states or simplify the instance"
                )
            return SearchBatch(
                result.candidates, tuple(open_tasks.values()), total_states
            )

        def settle(reason: str) -> None:
            """Budget ran out with the frontier still open: degrade or raise."""

            if budget.degrade:
                self.degradation = budget.degradation(
                    detail=f"{len(open_tasks)} frontier tasks unexplored"
                )
                return
            raise budget.error(reason)

        if self._workers <= 1:
            context = SearchContext(
                self._instance, self._index, exclusions=self._exclusions
            )
            while queue:
                if budget is not None:
                    reason = budget.exhausted()
                    if reason is not None:
                        settle(reason)
                        return
                task = queue.popleft()
                yield absorb(
                    context.run_task(task, self._chunk_states, request_budget=budget)
                )
            return

        policy = self._retry_policy
        fault_spec = _faults.worker_spec()
        audit = _ship_audit()
        codec = _columnar.FactCodec.from_instance(self._instance)
        payload = (
            self._instance_payload(audit),
            tuple(self._constraints),
            self._exclusions,
            _trace.enabled(),
            fault_spec,
        )
        inline_context: Optional[SearchContext] = None

        def charge_shipment(wire: Any, raw: Any) -> None:
            """Ship-bytes audit: what crossed the pool boundary vs. what
            the un-encoded object would have cost (``REPRO_SHIP_AUDIT=1``
            only — each measure is one extra pickle).

            Captured trace spans (shipped verbatim when tracing is on)
            are excluded from both sides: they are opt-in diagnostics
            with no encoded form on either side, and their wall-clock
            payload would make the byte counts non-deterministic — the
            audit measures the *search* wire format.
            """

            if not audit:
                return
            if isinstance(wire, tuple) and len(wire) == 4:  # a result wire
                wire = wire[:3] + ((),)
            if isinstance(raw, TaskResult) and raw.spans:
                raw = replace(raw, spans=())
            self.statistics.task_ship_bytes += len(
                pickle.dumps(wire, pickle.HIGHEST_PROTOCOL)
            )
            self.statistics.task_ship_bytes_raw += len(
                pickle.dumps(raw, pickle.HIGHEST_PROTOCOL)
            )

        def run_inline(task: FrontierTask) -> TaskResult:
            """Quarantine lane: execute a repeat-offender task in-process.

            The result is bit-identical to a worker's — run_task is a
            pure function of (task, chunk budget) — so falling back
            never changes the answer, only where it was computed.
            """

            nonlocal inline_context
            if inline_context is None:
                inline_context = SearchContext(
                    self._instance, self._index, exclusions=self._exclusions
                )
            return inline_context.run_task(
                task, self._chunk_states, request_budget=budget
            )

        def spawn() -> ProcessPoolExecutor:
            executor = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_worker_init,
                initargs=payload,
            )
            self._executor = executor
            return executor

        executor: Optional[ProcessPoolExecutor] = spawn()
        respawns = 0
        attempts: Dict[Path, int] = {}
        in_flight: Dict[Future, FrontierTask] = {}

        def pool_broke(lost_tasks: List[FrontierTask]) -> None:
            """A worker died: requeue everything, reap, respawn with backoff.

            Past the respawn allowance the executor stays ``None`` and
            the remaining frontier finishes inline.  Every requeued task
            gains an attempt so a task that keeps breaking pools is
            eventually quarantined even while respawns last.
            """

            nonlocal executor, respawns
            for lost in [*lost_tasks, *in_flight.values()]:
                attempts[lost.path] = attempts.get(lost.path, 0) + 1
                queue.appendleft(lost)
            in_flight.clear()
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            if respawns >= policy.max_pool_respawns:
                executor = None
            else:
                respawns += 1
                time.sleep(policy.backoff(respawns))
                executor = spawn()

        try:
            while queue or in_flight:
                if budget is not None:
                    reason = budget.exhausted()
                    if reason is not None:
                        settle(reason)
                        return
                while (
                    queue
                    and executor is not None
                    and len(in_flight) < self._workers * 2
                ):
                    task = queue.popleft()
                    if attempts.get(task.path, 0) >= policy.max_attempts:
                        # Quarantined: this task (or its pool cohort) has
                        # failed max_attempts times — stop betting on the
                        # pool for it and settle it inline.
                        yield absorb(run_inline(task))
                        continue
                    # Workers never see the request budget (their state
                    # charges would land on a separate object), so clamp
                    # the chunk to the remaining state allowance: a cap
                    # smaller than a chunk truncates the task itself
                    # rather than being noticed only after it returns.
                    chunk = self._chunk_states
                    if budget is not None:
                        allowance = budget.remaining_states()
                        if allowance is not None:
                            chunk = max(1, min(chunk, allowance))
                    task_wire = _encode_task(codec, task)
                    self.statistics.tasks_shipped += 1
                    charge_shipment(task_wire, task)
                    try:
                        future = executor.submit(
                            _worker_run,
                            task_wire,
                            chunk,
                            budget.task_deadline() if budget is not None else None,
                        )
                    except BrokenProcessPool:
                        # The pool died between completions (e.g. a worker
                        # killed mid-initialization) and submit noticed
                        # first.
                        pool_broke([task])
                        break
                    in_flight[future] = task
                if executor is None and queue:
                    # The pool broke past its respawn allowance: finish the
                    # remaining frontier inline (budget checks continue at
                    # the loop top).
                    task = queue.popleft()
                    yield absorb(run_inline(task))
                    continue
                if not in_flight:
                    continue
                # A finite wait (when a budget is active) keeps deadline and
                # cancellation checks live even while every worker is deep
                # in a long task.
                done, _ = wait(
                    set(in_flight),
                    timeout=_BUDGET_POLL_SECONDS if budget is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task = in_flight.pop(future)
                    try:
                        result_wire = future.result()
                    except BrokenProcessPool:
                        # A worker died (crash, kill, OOM): every future on
                        # this pool is lost.  Requeue them all, reap the
                        # wreck, and respawn with backoff — up to the
                        # policy's allowance, then fall back inline.
                        pool_broke([task])
                        break
                    except Exception:
                        # A task-level failure (an injected exception, a
                        # pickling surprise): the pool is still healthy, so
                        # retry just this task with backoff, or quarantine
                        # it inline once it exhausts its attempts.
                        count = attempts.get(task.path, 0) + 1
                        attempts[task.path] = count
                        if count < policy.max_attempts:
                            time.sleep(policy.backoff(count))
                        queue.appendleft(task)
                    else:
                        attempts.pop(task.path, None)
                        result = _decode_result(codec, result_wire, task)
                        charge_shipment(result_wire, result)
                        yield absorb(result, remote=True)
        finally:
            self.close()

    def close(self) -> None:
        """Reap the process pool (idempotent; safe mid-search).

        ``batches()`` calls this on every exit path — exhaustion, budget
        raise, degradation, generator close — and abandonment-prone
        consumers (the anytime stream's session wrapper) call it again
        defensively: a merge error or an abandoned generator must never
        leak worker processes.
        """

        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        segment, self._shm = self._shm, None
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    # ------------------------------------------------------------------ collection
    def collect(self) -> List[Tuple[Path, FrozenSet[Fact], FrozenSet[Fact]]]:
        """Drain the search and return the candidates in discovery order.

        Candidates are sorted by path and deduplicated keeping the
        lexicographically least path per (inserted, deleted) pair —
        exactly the order the sequential depth-first search first
        discovers them in (a candidate's fact set determines its delta
        and vice versa, so delta-level dedup is fact-level dedup).

        Always strict: a degraded (partial) frontier would make the
        returned list silently wrong — some repair might never have been
        discovered and some non-minimal candidate never dominated — so
        if the budget degraded mid-search this raises the typed error
        the strict mode would have.  Partial results only flow through
        :class:`AnytimeRepairStream`, whose per-repair proofs stay sound
        under truncation.
        """

        first_paths: Dict[Tuple[FrozenSet[Fact], FrozenSet[Fact]], Path] = {}
        for batch in self.batches():
            for path, inserted, deleted in batch.candidates:
                key = (inserted, deleted)
                previous = first_paths.get(key)
                if previous is None or path < previous:
                    first_paths[key] = path
        if self.degradation is not None:
            raise budget_error(
                self.degradation.reason,
                "repair search degraded mid-collection: " + self.degradation.render(),
            )
        ordered = sorted(first_paths.items(), key=lambda item: item[1])
        self.statistics.candidates_found = len(ordered)
        return [(path, key[0], key[1]) for key, path in ordered]


# --------------------------------------------------------------------------- minimality
#: Per-process minimality context (all deltas), built by the initializer.
_MINIMALITY_CONTEXT: Optional[DeltaMinimality] = None


def _minimality_init(deltas: Tuple[FrozenSet[Fact], ...]) -> None:
    global _MINIMALITY_CONTEXT
    _MINIMALITY_CONTEXT = DeltaMinimality(list(deltas))


def _minimality_run(start: int, stop: int) -> Tuple[List[bool], int]:
    assert _MINIMALITY_CONTEXT is not None, "worker used before initialization"
    before = _MINIMALITY_CONTEXT.comparisons
    flags = [
        not _MINIMALITY_CONTEXT.dominated(index) for index in range(start, stop)
    ]
    return flags, _MINIMALITY_CONTEXT.comparisons - before


def parallel_minimal_flags(
    deltas: Sequence[FrozenSet[Fact]], workers: int
) -> Tuple[List[bool], int]:
    """``≤_D``-minimality flags with the pairwise checks sliced across processes.

    Each worker receives every candidate's delta once (via the pool
    initializer) and decides domination for contiguous index slices,
    reusing its process-local :class:`DeltaMinimality` context across
    them; the flags concatenate in index order, so the verdicts are
    identical to the sequential filter's.  Returns the per-candidate
    flags plus the total number of pairwise checks.
    """

    count = len(deltas)
    if count <= 1 or workers < 2:
        return minimal_flags_counted(deltas)
    slice_size = max(1, -(-count // (workers * 4)))  # ceil; ~4 slices per worker
    ranges = [
        (start, min(start + slice_size, count))
        for start in range(0, count, slice_size)
    ]
    flags: List[bool] = []
    comparisons = 0
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_minimality_init, initargs=(tuple(deltas),)
    ) as executor:
        for sliced, counted in executor.map(_minimality_run, *zip(*ranges)):
            flags.extend(sliced)
            comparisons += counted
    return flags, comparisons


# --------------------------------------------------------------------------- anytime
def frontier_could_dominate(
    frontier_delta: FrozenSet[Fact], candidate_delta: FrozenSet[Fact]
) -> bool:
    """Could *any* candidate below this frontier state be ``≤_D`` the candidate?

    The frontier's committed delta is contained in the delta of every
    candidate below it, so a null-free atom outside the candidate's
    delta — or a null atom with no same-non-null-projection cover in it
    (a conservative superset of Definition 6(b)'s cover) — rules the
    whole subtree out as a source of dominators.  Conservative: may
    answer True for a subtree that never produces one, never False for
    one that does.
    """

    for fact in frontier_delta:
        if not fact.has_null():
            if fact not in candidate_delta:
                return False
        else:
            non_null = fact.non_null_positions()
            if not any(
                other.predicate == fact.predicate
                and other.arity == fact.arity
                and all(other.values[i] == fact.values[i] for i in non_null)
                for other in candidate_delta
            ):
                return False
    return True


@dataclass
class _StreamCandidate:
    path: Path
    inserted: FrozenSet[Fact]
    deleted: FrozenSet[Fact]
    delta: FrozenSet[Fact]
    yielded: bool = False
    dominated: bool = False


class AnytimeRepairStream:
    """Iterate repairs as they are *proven* ``≤_D``-minimal, mid-search.

    Wraps a :class:`ParallelRepairSearch` and yields each repair at the
    earliest moment its minimality is certain: no discovered candidate
    strictly dominates it, and :func:`frontier_could_dominate` clears
    every open task.  When the search is exhausted the remaining
    undecided candidates go through the standard filter, so the yielded
    set is always exactly the repair set — anytime changes *when* each
    repair becomes available, never *which*.

    After exhaustion :attr:`ordered_repairs` holds the repairs in the
    sequential engines' canonical discovery order (the order
    ``RepairEngine.repairs`` returns), and :attr:`states_at_first_yield`
    records how deep into the search the first proof landed.
    """

    def __init__(self, search: ParallelRepairSearch, schema=None):
        self._search = search
        self._schema = schema
        self._base_facts = search._instance.fact_set()
        self.ordered_repairs: Optional[List[DatabaseInstance]] = None
        self.states_at_first_yield: Optional[int] = None
        self.yields_before_completion = 0
        #: Set when the underlying search degraded: everything yielded is
        #: a proven repair, but the enumeration may be incomplete and
        #: :attr:`ordered_repairs` stays ``None`` (never cache a partial
        #: list as the full answer).
        self.degradation: Optional[Degradation] = None

    def close(self) -> None:
        """Release the underlying search's process pool (idempotent)."""

        self._search.close()

    @property
    def statistics(self) -> RepairStatistics:
        """The underlying search's aggregate counters."""

        return self._search.statistics

    def _instance_for(self, entry: "_StreamCandidate") -> DatabaseInstance:
        facts = (self._base_facts - entry.deleted) | entry.inserted
        return DatabaseInstance.from_facts(facts, schema=self._schema)

    def __iter__(self) -> Iterator[DatabaseInstance]:
        pool: Dict[Tuple[FrozenSet[Fact], FrozenSet[Fact]], _StreamCandidate] = {}
        search_complete = False

        def provable(open_tasks: Sequence[FrontierTask]) -> Iterator[_StreamCandidate]:
            candidates = list(pool.values())
            for entry in candidates:
                if entry.yielded or entry.dominated:
                    continue
                blocked = False
                for other in candidates:
                    if other is entry:
                        continue
                    if leq_deltas(other.delta, entry.delta):
                        if not leq_deltas(entry.delta, other.delta):
                            entry.dominated = True
                            blocked = True
                            break
                if blocked:
                    continue
                if any(
                    frontier_could_dominate(task.delta(), entry.delta)
                    for task in open_tasks
                ):
                    continue
                entry.yielded = True
                if self.states_at_first_yield is None:
                    self.states_at_first_yield = self._search.statistics.states_explored
                if not search_complete:
                    self.yields_before_completion += 1
                yield entry

        for batch in self._search.batches():
            for path, inserted, deleted in batch.candidates:
                key = (inserted, deleted)
                entry = pool.get(key)
                if entry is None:
                    pool[key] = _StreamCandidate(
                        path, inserted, deleted, inserted | deleted
                    )
                elif path < entry.path:
                    entry.path = path
            for entry in provable(batch.open_tasks):
                yield self._instance_for(entry)

        if self._search.degradation is not None:
            # The search stopped early under a degrade-mode budget: every
            # repair yielded above carried a sound minimality proof, but
            # the tail of the frontier was never explored — flag the
            # truncation and leave ordered_repairs unset so nothing
            # caches this as the complete repair set.
            self.degradation = replace(
                self._search.degradation, proven=self.yields_before_completion
            )
            return

        search_complete = True
        # The search is exhausted: settle the undecided candidates with the
        # exact pairwise filter and emit whatever was not proven early, in
        # canonical discovery order.
        ordered = sorted(pool.values(), key=lambda entry: entry.path)
        flags = minimal_flags_for_deltas([entry.delta for entry in ordered])
        self.ordered_repairs = []
        for entry, minimal in zip(ordered, flags):
            if not minimal:
                if entry.yielded:
                    raise AssertionError(
                        "anytime certificate yielded a non-minimal candidate "
                        f"(delta {sorted(map(repr, entry.delta))}); this is a bug"
                    )
                continue
            repair = self._instance_for(entry)
            self.ordered_repairs.append(repair)
            if not entry.yielded:
                entry.yielded = True
                if self.states_at_first_yield is None:
                    self.states_at_first_yield = (
                        self._search.statistics.states_explored
                    )
                yield repair
