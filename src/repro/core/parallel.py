"""Parallel, anytime repair search over the mutate/undo DFS frontier.

The incremental engine of :mod:`repro.core.repairs` explores one
violation-resolution tree depth-first with a single working instance.
This module splits that tree into **frontier tasks** — unexplored
subtree roots identified by their branch-index *path* from the root —
and executes them either inline (``workers <= 1``) or on a
``concurrent.futures.ProcessPoolExecutor``, one seeded
:class:`~repro.core.repairs.ViolationTracker` and one copy-on-write
instance per worker process.

Three properties make the result exactly interchangeable with the
sequential engines:

* **Deterministic decomposition.**  A task explores at most
  ``chunk_states`` states; whatever frontier it could not expand is
  *deferred* back to the scheduler as new tasks.  Which tasks exist and
  what each explores is a pure function of (instance, constraints,
  chunk budget) — worker scheduling only changes *when* a task runs,
  never what it computes.  Oversized tasks split again, so granularity
  adapts to the tree shape the way a work-stealing deque would.
* **Path-ordered merging.**  Every candidate is reported with the
  branch-index path of the state that produced it.  Sorting the merged
  candidates by path and keeping the lexicographically least occurrence
  of each fact set reproduces the *discovery order* of the sequential
  depth-first search (a DFS discovers every state at its
  lexicographically least reachable path), so ``method="parallel"``
  returns a bit-identical repair list to ``method="incremental"``.
* **Sibling-exclusion partitioning** (denial-only constraint sets).
  When no constraint has consequent atoms, every fix is a deletion of
  an original fact, and branch *i* of a violation can soundly exclude
  the fixes of branches ``< i`` from its whole subtree: a candidate
  missing fact ``f`` must delete ``f`` somewhere, so forbidding the
  deletion partitions the candidates of sibling subtrees.  Workers
  then never duplicate each other's states.  With consequent atoms
  (RICs/UICs) the exclusion is unsound — an inserted witness of one
  constraint can resolve another, making some candidates reachable
  only through mixed resolution orders — so subtrees may overlap and
  the path-ordered dedup does the reconciliation instead.

On top of the decomposition, :class:`AnytimeRepairStream` turns the
search into an **anytime** enumeration: a candidate ``C`` is provably a
repair *before the search finishes* once (a) no candidate found so far
strictly ``≤_D``-dominates it and (b) no open frontier task could ever
produce a dominator.  (b) is sound because a task's committed delta
``∆_f`` (its inserted and deleted facts) is contained in the delta of
every candidate below it: inserted facts are never deleted again and
deleted facts never return, so if ``∆_f`` already contains a null-free
atom outside ``∆(D, C)`` — or a null atom with no cover in ``∆(D, C)``
(Definition 6(b)) — nothing below ``f`` can be ``≤_D C``.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.constraints.ic import AnyConstraint, ConstraintSet, NotNullConstraint
from repro.obs import clock as _clock
from repro.obs import trace as _trace
from repro.core.repairs import (
    DeltaMinimality,
    RepairSearchBudgetExceeded,
    RepairStatistics,
    ViolationIndex,
    ViolationTracker,
    deletion_fixes,
    insertion_fixes,
    leq_deltas,
    minimal_flags_counted,
    minimal_flags_for_deltas,
    violation_choice_key,
)
from repro.relational.instance import DatabaseInstance, Fact

#: Branch-index path of a search state, relative to the search root.
Path = Tuple[int, ...]

#: Default number of states one task may explore before it must defer
#: the rest of its subtree back to the scheduler.
DEFAULT_CHUNK_STATES = 1024

_EMPTY_FACTS: FrozenSet[Fact] = frozenset()


def exclusion_safe(constraints: Union[ConstraintSet, Iterable[AnyConstraint]]) -> bool:
    """Can sibling subtrees soundly exclude each other's fixes?

    True iff no constraint has consequent atoms — i.e. every violation
    is repaired by deletions only (keys/FDs, denials, checks, NOT
    NULL).  See the module docstring for why consequent atoms break the
    partition argument.
    """

    for constraint in constraints:
        if isinstance(constraint, NotNullConstraint):
            continue
        if constraint.head_atoms:
            return False
    return True


@dataclass(frozen=True)
class FrontierTask:
    """One unexplored subtree of the repair search.

    ``inserted``/``deleted`` are the facts committed on the path from
    the search root to this state (the task's *delta* — a lower bound,
    under ``⊆``, of the delta of every candidate in the subtree).  The
    exclusion sets are only populated for denial-only constraint sets.
    """

    path: Path
    inserted: FrozenSet[Fact]
    deleted: FrozenSet[Fact]
    excluded_deletions: FrozenSet[Fact] = _EMPTY_FACTS
    excluded_insertions: FrozenSet[Fact] = _EMPTY_FACTS

    def delta(self) -> FrozenSet[Fact]:
        """The facts every candidate below this state must differ on."""

        return self.inserted | self.deleted


#: A discovered candidate: (path, inserted facts, deleted facts).  The
#: candidate's fact set is ``(D ∖ deleted) ∪ inserted`` and its delta is
#: ``inserted ∪ deleted`` — shipping the (usually tiny) delta across the
#: process boundary instead of the whole instance keeps result pickling
#: proportional to the repair distance, not the database size.
Candidate = Tuple[Path, FrozenSet[Fact], FrozenSet[Fact]]


@dataclass
class TaskResult:
    """What one executed task hands back to the scheduler.

    ``spans`` carries the task's trace, captured inside the worker
    process as picklable :class:`repro.obs.trace.SpanRecord` trees and
    shipped home with the candidate deltas; the driver re-parents them
    into its own trace (:func:`repro.obs.trace.attach`).  Empty unless
    tracing is enabled; tasks run inline record straight into the
    driver's tracer and ship nothing.
    """

    task: FrontierTask
    candidates: List[Candidate]
    deferred: List[FrontierTask]
    statistics: RepairStatistics
    spans: Tuple["_trace.SpanRecord", ...] = ()


@dataclass
class SearchBatch:
    """One scheduler round: new results plus the still-open frontier."""

    candidates: List[Candidate]
    open_tasks: Tuple[FrontierTask, ...]
    states_explored: int  #: cumulative states across all finished tasks


class SearchContext:
    """A worker's private search state: instance, tracker, exclusion flag.

    One context is built per worker process (and one inline for
    ``workers <= 1``); it pays the full violation sweep once and then
    runs any number of tasks against the same working instance by
    replaying each task's delta before the bounded DFS and undoing it
    after — the same mutate/undo discipline the incremental engine
    uses, lifted to task granularity.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ViolationIndex, ConstraintSet, Iterable[AnyConstraint]],
        exclusions: Optional[bool] = None,
    ):
        self.index = (
            constraints
            if isinstance(constraints, ViolationIndex)
            else ViolationIndex(constraints)
        )
        self.working = instance.copy()
        self.tracker = ViolationTracker(self.working, self.index)
        self.exclusions = (
            exclusion_safe(self.index.constraints) if exclusions is None else exclusions
        )

    # ------------------------------------------------------------------ tasks
    def run_task(self, task: FrontierTask, budget: int) -> TaskResult:
        """Explore up to *budget* states of the task's subtree.

        Candidates are reported with their global path; the unexplored
        remainder of the subtree comes back as deferred tasks.  The
        working instance and tracker are restored exactly before
        returning, so contexts are reusable across tasks.
        """

        budget = max(budget, 1)
        stats = RepairStatistics()
        updates_before = self.tracker.updates
        reevaluated_before = self.tracker.constraints_reevaluated
        candidates: List[Candidate] = []
        deferred: List[FrontierTask] = []
        visited: Set[Tuple[FrozenSet[Fact], FrozenSet[Fact]]] = set()
        states_used = 0

        task_span = _trace.span("repair.task")
        if task_span:
            task_span.add(path=str(task.path), delta=len(task.delta()))
        cpu_started = _clock.cpu_now()
        replay: List[Tuple[str, Fact, object]] = []
        task_span.__enter__()
        try:
            for fact in sorted(task.deleted, key=Fact.sort_key):
                self.working.discard(fact)
                replay.append(("del", fact, self.tracker.notify_removed(fact)))
            for fact in sorted(task.inserted, key=Fact.sort_key):
                self.working.add(fact)
                replay.append(("ins", fact, self.tracker.notify_added(fact)))

            def explore(
                path: Path,
                inserted: FrozenSet[Fact],
                deleted: FrozenSet[Fact],
                excluded_deletions: FrozenSet[Fact],
                excluded_insertions: FrozenSet[Fact],
            ) -> None:
                nonlocal states_used
                state_key = (inserted, deleted)
                if state_key in visited:
                    return
                if states_used >= budget:
                    deferred.append(
                        FrontierTask(
                            path,
                            inserted,
                            deleted,
                            excluded_deletions,
                            excluded_insertions,
                        )
                    )
                    return
                visited.add(state_key)
                states_used += 1
                stats.states_explored += 1

                current = self.tracker.violations()
                if not current:
                    stats.candidates_found += 1
                    candidates.append((path, inserted, deleted))
                    return

                violation = min(current, key=violation_choice_key)
                branched = False
                branch = 0
                for fact in deletion_fixes(violation):
                    index = branch
                    branch += 1
                    if fact in inserted:  # the program denial: never undo an insertion
                        continue
                    if fact in excluded_deletions:
                        continue  # the candidate lives in an earlier sibling subtree
                    self.working.discard(fact)
                    delta = self.tracker.notify_removed(fact)
                    branched = True
                    explore(
                        path + (index,),
                        inserted,
                        deleted | {fact},
                        excluded_deletions,
                        excluded_insertions,
                    )
                    self.tracker.revert(delta)
                    self.working.add(fact)
                    if self.exclusions:
                        excluded_deletions = excluded_deletions | {fact}
                for fact in insertion_fixes(violation):
                    index = branch
                    branch += 1
                    if fact in deleted or fact in self.working:
                        continue
                    if fact in excluded_insertions:
                        continue
                    self.working.add(fact)
                    delta = self.tracker.notify_added(fact)
                    branched = True
                    explore(
                        path + (index,),
                        inserted | {fact},
                        deleted,
                        excluded_deletions,
                        excluded_insertions,
                    )
                    self.tracker.revert(delta)
                    self.working.discard(fact)
                    if self.exclusions:
                        excluded_insertions = excluded_insertions | {fact}
                if not branched:
                    stats.dead_branches += 1

            explore(
                task.path,
                task.inserted,
                task.deleted,
                task.excluded_deletions,
                task.excluded_insertions,
            )
        finally:
            for kind, fact, delta in reversed(replay):
                self.tracker.revert(delta)  # type: ignore[arg-type]
                if kind == "del":
                    self.working.add(fact)
                else:
                    self.working.discard(fact)
            stats.task_cpu_seconds = _clock.cpu_now() - cpu_started
            if task_span:
                task_span.add(
                    states=stats.states_explored,
                    candidates=stats.candidates_found,
                    deferred=len(deferred),
                )
            task_span.__exit__(None, None, None)
        stats.violation_updates = self.tracker.updates - updates_before
        stats.constraints_reevaluated = (
            self.tracker.constraints_reevaluated - reevaluated_before
        )
        return TaskResult(task, candidates, deferred, stats)


# --------------------------------------------------------------------------- workers
#: Per-process search context, built once by the pool initializer.
_WORKER_CONTEXT: Optional[SearchContext] = None


def _worker_init(
    facts: Tuple[Fact, ...],
    constraints: Tuple[AnyConstraint, ...],
    exclusions: bool,
    tracing: bool = False,
) -> None:
    """Process-pool initializer: rebuild the instance, sweep violations once."""

    global _WORKER_CONTEXT
    if tracing:
        _trace.enable()
    # Fork-started workers inherit the driver's tracer mid-request: its
    # recorded roots (which would ship back as duplicates) and its open
    # span stack (which would swallow this worker's spans as children of
    # a phantom parent).  Start from a clean tracer either way.
    _trace.reset()
    instance = DatabaseInstance.from_facts(facts)
    _WORKER_CONTEXT = SearchContext(
        instance, ConstraintSet(list(constraints)), exclusions=exclusions
    )


def _worker_run(task: FrontierTask, budget: int) -> TaskResult:
    """Execute one task against the process-local context."""

    assert _WORKER_CONTEXT is not None, "worker used before initialization"
    result = _WORKER_CONTEXT.run_task(task, budget)
    if _trace.enabled():
        result.spans = _trace.capture_records()
    return result


# --------------------------------------------------------------------------- driver
class ParallelRepairSearch:
    """Schedule the frontier tasks of one repair search.

    ``workers <= 1`` executes every task inline, in FIFO order — fully
    deterministic, no processes, still anytime (batches surface as each
    task finishes).  ``workers >= 2`` runs the tasks on a process pool
    with up to ``2 × workers`` tasks in flight; which tasks exist and
    what each returns is deterministic either way (only batch arrival
    order varies).

    Aggregate counters accumulate into :attr:`statistics` via
    :meth:`RepairStatistics.merge` as tasks finish; ``states_explored``
    sums the per-task counts, so with overlapping subtrees (non
    denial-only constraints) it may exceed the sequential engines'
    unique-state count — the ``max_states`` budget applies to that sum.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
        *,
        workers: int = 0,
        max_states: Optional[int] = 200_000,
        chunk_states: int = DEFAULT_CHUNK_STATES,
        violation_index: Optional[ViolationIndex] = None,
    ):
        self._instance = instance
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(list(constraints))
        )
        self._index = (
            violation_index
            if violation_index is not None
            else ViolationIndex(self._constraints)
        )
        self._workers = max(workers, 0)
        self._max_states = max_states
        self._chunk_states = max(chunk_states, 1)
        self._exclusions = exclusion_safe(self._constraints)
        self.statistics = RepairStatistics()

    @property
    def uses_exclusions(self) -> bool:
        """True when sibling-exclusion partitioning is active (denial-only)."""

        return self._exclusions

    def batches(self) -> Iterator[SearchBatch]:
        """Run the search, yielding one :class:`SearchBatch` per finished task.

        Closing the generator early (e.g. an anytime consumer that
        short-circuited) shuts the pool down and cancels queued tasks.
        Raises :class:`RepairSearchBudgetExceeded` when the cumulative
        state count crosses ``max_states``.
        """

        root = FrontierTask((), _EMPTY_FACTS, _EMPTY_FACTS)
        queue: deque[FrontierTask] = deque([root])
        open_tasks: Dict[Path, FrontierTask] = {root.path: root}
        total_states = 0
        started = _clock.now()

        def absorb(result: TaskResult) -> SearchBatch:
            nonlocal total_states
            total_states += result.statistics.states_explored
            self.statistics.merge(result.statistics)
            # Wall clock is the driver's elapsed time, never the sum of the
            # per-task CPU seconds merge() accumulates separately.
            self.statistics.search_seconds = _clock.now() - started
            if result.spans:
                _trace.attach(result.spans)
            del open_tasks[result.task.path]
            for sub_task in result.deferred:
                open_tasks[sub_task.path] = sub_task
                queue.append(sub_task)
            if self._max_states is not None and total_states > self._max_states:
                raise RepairSearchBudgetExceeded(
                    f"repair search exceeded {self._max_states} states; "
                    "raise max_states or simplify the instance"
                )
            return SearchBatch(
                result.candidates, tuple(open_tasks.values()), total_states
            )

        if self._workers <= 1:
            context = SearchContext(
                self._instance, self._index, exclusions=self._exclusions
            )
            while queue:
                task = queue.popleft()
                yield absorb(context.run_task(task, self._chunk_states))
            return

        payload = (
            tuple(self._instance.facts()),
            tuple(self._constraints),
            self._exclusions,
            _trace.enabled(),
        )
        executor = ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_worker_init,
            initargs=payload,
        )
        try:
            in_flight: Set[Future] = set()
            while queue or in_flight:
                while queue and len(in_flight) < self._workers * 2:
                    task = queue.popleft()
                    in_flight.add(
                        executor.submit(_worker_run, task, self._chunk_states)
                    )
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    yield absorb(future.result())
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ collection
    def collect(self) -> List[Tuple[Path, FrozenSet[Fact], FrozenSet[Fact]]]:
        """Drain the search and return the candidates in discovery order.

        Candidates are sorted by path and deduplicated keeping the
        lexicographically least path per (inserted, deleted) pair —
        exactly the order the sequential depth-first search first
        discovers them in (a candidate's fact set determines its delta
        and vice versa, so delta-level dedup is fact-level dedup).
        """

        first_paths: Dict[Tuple[FrozenSet[Fact], FrozenSet[Fact]], Path] = {}
        for batch in self.batches():
            for path, inserted, deleted in batch.candidates:
                key = (inserted, deleted)
                previous = first_paths.get(key)
                if previous is None or path < previous:
                    first_paths[key] = path
        ordered = sorted(first_paths.items(), key=lambda item: item[1])
        self.statistics.candidates_found = len(ordered)
        return [(path, key[0], key[1]) for key, path in ordered]


# --------------------------------------------------------------------------- minimality
#: Per-process minimality context (all deltas), built by the initializer.
_MINIMALITY_CONTEXT: Optional[DeltaMinimality] = None


def _minimality_init(deltas: Tuple[FrozenSet[Fact], ...]) -> None:
    global _MINIMALITY_CONTEXT
    _MINIMALITY_CONTEXT = DeltaMinimality(list(deltas))


def _minimality_run(start: int, stop: int) -> Tuple[List[bool], int]:
    assert _MINIMALITY_CONTEXT is not None, "worker used before initialization"
    before = _MINIMALITY_CONTEXT.comparisons
    flags = [
        not _MINIMALITY_CONTEXT.dominated(index) for index in range(start, stop)
    ]
    return flags, _MINIMALITY_CONTEXT.comparisons - before


def parallel_minimal_flags(
    deltas: Sequence[FrozenSet[Fact]], workers: int
) -> Tuple[List[bool], int]:
    """``≤_D``-minimality flags with the pairwise checks sliced across processes.

    Each worker receives every candidate's delta once (via the pool
    initializer) and decides domination for contiguous index slices,
    reusing its process-local :class:`DeltaMinimality` context across
    them; the flags concatenate in index order, so the verdicts are
    identical to the sequential filter's.  Returns the per-candidate
    flags plus the total number of pairwise checks.
    """

    count = len(deltas)
    if count <= 1 or workers < 2:
        return minimal_flags_counted(deltas)
    slice_size = max(1, -(-count // (workers * 4)))  # ceil; ~4 slices per worker
    ranges = [
        (start, min(start + slice_size, count))
        for start in range(0, count, slice_size)
    ]
    flags: List[bool] = []
    comparisons = 0
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_minimality_init, initargs=(tuple(deltas),)
    ) as executor:
        for sliced, counted in executor.map(_minimality_run, *zip(*ranges)):
            flags.extend(sliced)
            comparisons += counted
    return flags, comparisons


# --------------------------------------------------------------------------- anytime
def frontier_could_dominate(
    frontier_delta: FrozenSet[Fact], candidate_delta: FrozenSet[Fact]
) -> bool:
    """Could *any* candidate below this frontier state be ``≤_D`` the candidate?

    The frontier's committed delta is contained in the delta of every
    candidate below it, so a null-free atom outside the candidate's
    delta — or a null atom with no same-non-null-projection cover in it
    (a conservative superset of Definition 6(b)'s cover) — rules the
    whole subtree out as a source of dominators.  Conservative: may
    answer True for a subtree that never produces one, never False for
    one that does.
    """

    for fact in frontier_delta:
        if not fact.has_null():
            if fact not in candidate_delta:
                return False
        else:
            non_null = fact.non_null_positions()
            if not any(
                other.predicate == fact.predicate
                and other.arity == fact.arity
                and all(other.values[i] == fact.values[i] for i in non_null)
                for other in candidate_delta
            ):
                return False
    return True


@dataclass
class _StreamCandidate:
    path: Path
    inserted: FrozenSet[Fact]
    deleted: FrozenSet[Fact]
    delta: FrozenSet[Fact]
    yielded: bool = False
    dominated: bool = False


class AnytimeRepairStream:
    """Iterate repairs as they are *proven* ``≤_D``-minimal, mid-search.

    Wraps a :class:`ParallelRepairSearch` and yields each repair at the
    earliest moment its minimality is certain: no discovered candidate
    strictly dominates it, and :func:`frontier_could_dominate` clears
    every open task.  When the search is exhausted the remaining
    undecided candidates go through the standard filter, so the yielded
    set is always exactly the repair set — anytime changes *when* each
    repair becomes available, never *which*.

    After exhaustion :attr:`ordered_repairs` holds the repairs in the
    sequential engines' canonical discovery order (the order
    ``RepairEngine.repairs`` returns), and :attr:`states_at_first_yield`
    records how deep into the search the first proof landed.
    """

    def __init__(self, search: ParallelRepairSearch, schema=None):
        self._search = search
        self._schema = schema
        self._base_facts = search._instance.fact_set()
        self.ordered_repairs: Optional[List[DatabaseInstance]] = None
        self.states_at_first_yield: Optional[int] = None
        self.yields_before_completion = 0

    @property
    def statistics(self) -> RepairStatistics:
        """The underlying search's aggregate counters."""

        return self._search.statistics

    def _instance_for(self, entry: "_StreamCandidate") -> DatabaseInstance:
        facts = (self._base_facts - entry.deleted) | entry.inserted
        return DatabaseInstance.from_facts(facts, schema=self._schema)

    def __iter__(self) -> Iterator[DatabaseInstance]:
        pool: Dict[Tuple[FrozenSet[Fact], FrozenSet[Fact]], _StreamCandidate] = {}
        search_complete = False

        def provable(open_tasks: Sequence[FrontierTask]) -> Iterator[_StreamCandidate]:
            candidates = list(pool.values())
            for entry in candidates:
                if entry.yielded or entry.dominated:
                    continue
                blocked = False
                for other in candidates:
                    if other is entry:
                        continue
                    if leq_deltas(other.delta, entry.delta):
                        if not leq_deltas(entry.delta, other.delta):
                            entry.dominated = True
                            blocked = True
                            break
                if blocked:
                    continue
                if any(
                    frontier_could_dominate(task.delta(), entry.delta)
                    for task in open_tasks
                ):
                    continue
                entry.yielded = True
                if self.states_at_first_yield is None:
                    self.states_at_first_yield = self._search.statistics.states_explored
                if not search_complete:
                    self.yields_before_completion += 1
                yield entry

        for batch in self._search.batches():
            for path, inserted, deleted in batch.candidates:
                key = (inserted, deleted)
                entry = pool.get(key)
                if entry is None:
                    pool[key] = _StreamCandidate(
                        path, inserted, deleted, inserted | deleted
                    )
                elif path < entry.path:
                    entry.path = path
            for entry in provable(batch.open_tasks):
                yield self._instance_for(entry)

        search_complete = True
        # The search is exhausted: settle the undecided candidates with the
        # exact pairwise filter and emit whatever was not proven early, in
        # canonical discovery order.
        ordered = sorted(pool.values(), key=lambda entry: entry.path)
        flags = minimal_flags_for_deltas([entry.delta for entry in ordered])
        self.ordered_repairs = []
        for entry, minimal in zip(ordered, flags):
            if not minimal:
                if entry.yielded:
                    raise AssertionError(
                        "anytime certificate yielded a non-minimal candidate "
                        f"(delta {sorted(map(repr, entry.delta))}); this is a bug"
                    )
                continue
            repair = self._instance_for(entry)
            self.ordered_repairs.append(repair)
            if not entry.yielded:
                entry.yielded = True
                if self.states_at_first_yield is None:
                    self.states_at_first_yield = (
                        self._search.statistics.states_explored
                    )
                yield repair
