"""Projected instances ``D^A`` (Definition 3).

Given a set ``A`` of relevant attributes and an instance ``D``, the
projected instance ``D^A`` contains, for every fact ``P(t̄) ∈ D``, the fact
``P^A(Π_A(t̄))`` — the tuple restricted to the relevant positions of ``P``.
Relations not mentioned in ``A`` keep all their attributes only if the
caller asks for them; by default they are omitted, because the rewritten
constraint ``ψ_N`` never mentions them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.relational.instance import DatabaseInstance, Fact
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.constraints.ic import IntegrityConstraint
from repro.core.relevant import relevant_positions


def project_instance(
    instance: DatabaseInstance,
    positions_by_predicate: Mapping[str, Sequence[int]],
) -> DatabaseInstance:
    """Project *instance* onto the given positions, per predicate.

    Predicates not listed in *positions_by_predicate* are dropped (the
    rewritten constraint does not mention them).  A predicate mapped to an
    empty position sequence becomes a 0-ary relation that contains the
    empty tuple iff the original relation is non-empty.
    """

    schema = DatabaseSchema()
    for predicate, positions in positions_by_predicate.items():
        if predicate in instance.schema:
            original = instance.schema.relation(predicate)
            schema.add_relation(original.project(tuple(positions)))
        else:
            schema.add_relation(
                RelationSchema(predicate, tuple(f"a{i + 1}" for i in range(len(positions))))
            )

    projected = DatabaseInstance(schema=schema)
    for predicate, positions in positions_by_predicate.items():
        for row in instance.tuples(predicate):
            projected.add_tuple(predicate, tuple(row[i] for i in positions))
    return projected


def project_for_constraint(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> DatabaseInstance:
    """``D^{A(ψ)}`` for a single constraint ``ψ`` (Definition 3)."""

    return project_instance(instance, relevant_positions(constraint))


def projected_schema_for_constraint(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> Dict[str, Tuple[str, ...]]:
    """The attribute lists of the projected relations (useful for reporting)."""

    result: Dict[str, Tuple[str, ...]] = {}
    for predicate, positions in relevant_positions(constraint).items():
        if predicate in instance.schema:
            attributes = instance.schema.relation(predicate).attributes
            result[predicate] = tuple(attributes[i] for i in positions)
        else:
            result[predicate] = tuple(f"a{i + 1}" for i in range(len(positions)))
    return result
