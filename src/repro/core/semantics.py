"""Alternative null-value semantics compared in the paper (Example 4).

The paper positions its semantics against four others:

* **classical** first-order satisfaction with ``null`` treated as an
  ordinary constant (the implicit reading of Arenas–Bertossi–Chomicki 1999);
* the **liberal** semantics of Bravo & Bertossi 2004 ([10] in the paper):
  a tuple containing ``null`` *anywhere* never causes an inconsistency;
* the SQL:2003 **simple-match** foreign-key semantics (the one commercial
  DBMSs implement): a referencing tuple with a null in any referencing
  column is acceptable, otherwise an exactly matching referenced tuple must
  exist;
* the SQL:2003 **partial-match** semantics: the non-null referencing
  columns must match some referenced tuple;
* the SQL:2003 **full-match** semantics: either all referencing columns are
  null, or none is and an exact match exists.

``Semantics.PAPER`` is the semantics of Definition 4, implemented in
:mod:`repro.core.satisfaction`.  The match semantics are only defined for
reference-shaped constraints (one antecedent atom, one consequent atom);
for any other constraint they fall back to the paper's semantics, which
the paper itself presents as their generalisation.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.relational.domain import Constant, is_null
from repro.relational.instance import DatabaseInstance, Fact
from repro.constraints.atoms import Atom
from repro.constraints.ic import (
    AnyConstraint,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Variable, is_variable
from repro.core import satisfaction as paper_satisfaction
from repro.core.satisfaction import Violation, body_matches, not_null_violations


class Semantics(enum.Enum):
    """The integrity-constraint satisfaction semantics supported."""

    PAPER = "paper"
    CLASSICAL = "classical"
    LIBERAL = "liberal"
    SIMPLE_MATCH = "simple_match"
    PARTIAL_MATCH = "partial_match"
    FULL_MATCH = "full_match"


def violations_under(
    instance: DatabaseInstance,
    constraint: AnyConstraint,
    semantics: Semantics = Semantics.PAPER,
) -> List[Violation]:
    """Ground violations of *constraint* under the chosen *semantics*."""

    if isinstance(constraint, NotNullConstraint):
        # NNCs are interpreted classically under every semantics (Definition 5).
        return not_null_violations(instance, constraint)
    if semantics is Semantics.PAPER:
        return paper_satisfaction.violations(instance, constraint)
    if semantics is Semantics.CLASSICAL:
        return _classical_violations(instance, constraint)
    if semantics is Semantics.LIBERAL:
        return _liberal_violations(instance, constraint)
    if semantics in (Semantics.SIMPLE_MATCH, Semantics.PARTIAL_MATCH, Semantics.FULL_MATCH):
        if _is_reference_shaped(constraint):
            return _match_violations(instance, constraint, semantics)
        return paper_satisfaction.violations(instance, constraint)
    raise ValueError(f"unknown semantics {semantics!r}")


def satisfies_under(
    instance: DatabaseInstance,
    constraint: AnyConstraint,
    semantics: Semantics = Semantics.PAPER,
) -> bool:
    """True iff *instance* satisfies *constraint* under *semantics*."""

    return not violations_under(instance, constraint, semantics)


def is_consistent_under(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
    semantics: Semantics = Semantics.PAPER,
) -> bool:
    """True iff *instance* satisfies every constraint under *semantics*."""

    return all(satisfies_under(instance, c, semantics) for c in constraints)


def semantics_matrix(
    instance: DatabaseInstance,
    constraints: Union[ConstraintSet, Iterable[AnyConstraint]],
) -> Dict[Semantics, bool]:
    """Consistency verdict of the instance under every supported semantics.

    This reproduces the comparison of Example 4: the same database can be
    consistent under some semantics and inconsistent under others.
    """

    constraint_list = list(constraints)
    return {
        semantics: is_consistent_under(instance, constraint_list, semantics)
        for semantics in Semantics
    }


# --------------------------------------------------------------------------- classical
def _witness_all_positions(
    instance: DatabaseInstance, atom: Atom, assignment: Mapping[Variable, Constant]
) -> bool:
    """Classical witness check: the atom must match on *every* position."""

    return paper_satisfaction._head_atom_has_witness(  # noqa: SLF001 - shared helper
        instance, atom, dict(assignment), tuple(range(atom.arity))
    )


def _classical_violations(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> List[Violation]:
    found: List[Violation] = []
    for assignment, facts in body_matches(instance, constraint.body):
        if paper_satisfaction._comparison_disjunction_holds(  # noqa: SLF001
            constraint.head_comparisons, assignment
        ):
            continue
        if any(
            _witness_all_positions(instance, atom, assignment)
            for atom in constraint.head_atoms
        ):
            continue
        bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
        found.append(Violation(constraint, bindings, facts))
    return found


# --------------------------------------------------------------------------- liberal [10]
def _liberal_violations(
    instance: DatabaseInstance, constraint: IntegrityConstraint
) -> List[Violation]:
    found: List[Violation] = []
    for assignment, facts in body_matches(instance, constraint.body):
        if any(fact.has_null() for fact in facts):
            continue  # a null anywhere in an antecedent tuple: never inconsistent
        if paper_satisfaction._comparison_disjunction_holds(  # noqa: SLF001
            constraint.head_comparisons, assignment
        ):
            continue
        if any(
            _witness_all_positions(instance, atom, assignment)
            for atom in constraint.head_atoms
        ):
            continue
        bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
        found.append(Violation(constraint, bindings, facts))
    return found


# --------------------------------------------------------------------------- SQL matches
def _is_reference_shaped(constraint: IntegrityConstraint) -> bool:
    """One antecedent atom, one consequent atom, no built-ins: an inclusion/FK shape."""

    return (
        len(constraint.body) == 1
        and len(constraint.head_atoms) == 1
        and not constraint.head_comparisons
    )


def _reference_positions(
    constraint: IntegrityConstraint,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(referencing positions in the antecedent, referenced positions in the consequent)."""

    body_atom = constraint.body[0]
    head_atom = constraint.head_atoms[0]
    body_vars = constraint.body_variables()
    referencing: List[int] = []
    referenced: List[int] = []
    for head_pos, term in enumerate(head_atom.terms):
        if is_variable(term) and term in body_vars:
            body_occurrences = body_atom.positions_of(term)
            if body_occurrences:
                referencing.append(body_occurrences[0])
                referenced.append(head_pos)
    return tuple(referencing), tuple(referenced)


def _match_violations(
    instance: DatabaseInstance,
    constraint: IntegrityConstraint,
    semantics: Semantics,
) -> List[Violation]:
    body_atom = constraint.body[0]
    head_atom = constraint.head_atoms[0]
    referencing, referenced = _reference_positions(constraint)
    parent_rows = instance.tuples(head_atom.predicate)

    found: List[Violation] = []
    for assignment, facts in body_matches(instance, (body_atom,)):
        fact = facts[0]
        ref_values = tuple(fact.values[p] for p in referencing)
        nulls = [is_null(v) for v in ref_values]
        if semantics is Semantics.SIMPLE_MATCH and any(nulls):
            continue
        if semantics is Semantics.PARTIAL_MATCH and all(nulls):
            continue
        if semantics is Semantics.FULL_MATCH:
            if all(nulls):
                continue
            if any(nulls):
                bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
                found.append(Violation(constraint, bindings, facts))
                continue
        matched = False
        for row in parent_rows:
            row_ok = True
            for value, parent_pos, value_is_null in zip(ref_values, referenced, nulls):
                if semantics is Semantics.PARTIAL_MATCH and value_is_null:
                    continue  # null referencing columns are ignored by partial match
                if is_null(row[parent_pos]) or row[parent_pos] != value:
                    row_ok = False
                    break
            if row_ok:
                matched = True
                break
        if not matched:
            bindings = tuple(sorted(assignment.items(), key=lambda item: item[0].name))
            found.append(Violation(constraint, bindings, facts))
    return found
