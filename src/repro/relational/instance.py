"""Database instances as finite sets of ground atoms.

An instance ``D`` compatible with a schema ``Σ`` is a finite collection of
ground atoms ``R(c_1, …, c_n)`` with ``R ∈ R`` and ``c_i ∈ U`` (possibly
``null``).  Following the paper we use the *set* semantics (Example 7
discusses why the SQL bag semantics cannot be enforced with first-order
constraints): duplicate tuples collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.domain import (
    Constant,
    NULL,
    constant_sort_key,
    format_constant,
    is_null,
    normalise_constant,
)
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError


Row = Tuple[Constant, ...]

_EMPTY_ROWS: FrozenSet[Row] = frozenset()


@dataclass(frozen=True)
class Fact:
    """A ground database atom ``R(c_1, …, c_n)``."""

    predicate: str
    values: Tuple[Constant, ...]

    def __init__(self, predicate: str, values: Sequence[Constant]) -> None:
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(
            self, "values", tuple(normalise_constant(v) for v in values)
        )

    @property
    def arity(self) -> int:
        """Number of values in the atom."""

        return len(self.values)

    def has_null(self) -> bool:
        """True iff any value of the atom is ``null``."""

        return any(is_null(v) for v in self.values)

    def null_positions(self) -> Tuple[int, ...]:
        """0-based positions whose value is ``null``."""

        return tuple(i for i, v in enumerate(self.values) if is_null(v))

    def non_null_positions(self) -> Tuple[int, ...]:
        """0-based positions whose value is not ``null``."""

        return tuple(i for i, v in enumerate(self.values) if not is_null(v))

    def project(self, positions: Sequence[int]) -> "Fact":
        """Projection of the atom onto *positions*, keeping the predicate name."""

        return Fact(self.predicate, tuple(self.values[i] for i in positions))

    def agrees_on(self, other: "Fact", positions: Iterable[int]) -> bool:
        """True iff *other* has the same predicate and equal values at *positions*."""

        if self.predicate != other.predicate or self.arity != other.arity:
            return False
        return all(self.values[i] == other.values[i] for i in positions)

    def sort_key(self) -> Tuple[Any, ...]:
        """Deterministic ordering key for reporting."""

        return (self.predicate,) + tuple(constant_sort_key(v) for v in self.values)

    def __repr__(self) -> str:
        inner = ", ".join(format_constant(v) for v in self.values)
        return f"{self.predicate}({inner})"


class _PredicateIndex:
    """Hash index of one relation's rows: position → value → set of rows.

    Built lazily the first time an indexed lookup touches the predicate and
    maintained incrementally on every subsequent insert/delete, so point
    lookups (``R[i] = v``) cost one dictionary probe instead of a scan.
    """

    __slots__ = ("arity", "by_position")

    def __init__(self, arity: int, rows: Iterable[Row] = ()) -> None:
        self.arity = arity
        self.by_position: Tuple[Dict[Constant, Set[Row]], ...] = tuple(
            {} for _ in range(arity)
        )
        for row in rows:
            self.add(row)

    def add(self, row: Row) -> None:
        for position, value in enumerate(row):
            self.by_position[position].setdefault(value, set()).add(row)

    def discard(self, row: Row) -> None:
        for position, value in enumerate(row):
            buckets = self.by_position[position]
            rows = buckets.get(value)
            if rows is not None:
                rows.discard(row)
                if not rows:
                    del buckets[value]

    def rows_where(self, position: int, value: Constant) -> Set[Row]:
        return self.by_position[position].get(value, _EMPTY_ROWS)  # type: ignore[return-value]

    def copy(self) -> "_PredicateIndex":
        clone = _PredicateIndex.__new__(_PredicateIndex)
        clone.arity = self.arity
        clone.by_position = tuple(
            {value: set(rows) for value, rows in buckets.items()}
            for buckets in self.by_position
        )
        return clone


class DatabaseInstance:
    """A finite set of :class:`Fact` objects over a :class:`DatabaseSchema`.

    The instance is mutable (facts can be added and removed) and cheap to
    copy: :meth:`copy` shares the per-relation row sets (and their hash
    indexes) with the clone and only materialises a private copy of a
    relation when one side mutates it — the repair search branches
    thousands of times without ever duplicating the unchanged relations.
    Equality is extensional: two instances are equal iff they contain the
    same facts (the schema is compared by the relations actually
    populated).
    """

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        facts: Iterable[Fact] = (),
    ) -> None:
        self._schema = schema if schema is not None else DatabaseSchema()
        #: Monotone mutation counter: bumped on every effective insert or
        #: delete, never decremented (a rolled-back change still advances
        #: it).  Cache layers key derived state on it — equal generations
        #: of the same instance guarantee equal contents.
        self._generation = 0
        self._tuples: Dict[str, Set[Tuple[Constant, ...]]] = {}
        #: Predicates whose row set (and index) this instance may mutate in
        #: place; everything else is potentially shared with a copy.
        self._owned: Set[str] = set()
        self._indexes: Dict[str, _PredicateIndex] = {}
        #: Composite-key group caches: predicate → positions → key → rows.
        self._groups: Dict[str, Dict[Tuple[int, ...], Dict[Row, List[Row]]]] = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[Constant]]],
        schema: Optional[DatabaseSchema] = None,
    ) -> "DatabaseInstance":
        """Build an instance from ``{"P": [(a, b), (c, None)], ...}``.

        ``None`` entries are converted to :data:`repro.relational.domain.NULL`.
        When *schema* is omitted one is inferred with generic attribute names.
        """

        instance = cls(schema=schema.copy() if schema is not None else DatabaseSchema())
        for predicate, rows in data.items():
            for row in rows:
                instance.add_tuple(predicate, row)
        return instance

    @classmethod
    def from_facts(
        cls, facts: Iterable[Fact], schema: Optional[DatabaseSchema] = None
    ) -> "DatabaseInstance":
        """Build an instance from an iterable of :class:`Fact`."""

        instance = cls(schema=schema.copy() if schema is not None else DatabaseSchema())
        for fact in facts:
            instance.add(fact)
        return instance

    # ------------------------------------------------------------------ mutate
    def _writable_rows(self, predicate: str, create: bool = False) -> Optional[Set[Row]]:
        """The row set of *predicate*, privatised (copy-on-write) for mutation."""

        rows = self._tuples.get(predicate)
        if rows is None:
            if not create:
                return None
            rows = set()
            self._tuples[predicate] = rows
            self._owned.add(predicate)
            return rows
        if predicate not in self._owned:
            rows = set(rows)
            self._tuples[predicate] = rows
            index = self._indexes.get(predicate)
            if index is not None:
                self._indexes[predicate] = index.copy()
            self._owned.add(predicate)
        return rows

    def _after_insert(self, predicate: str, values: Row) -> None:
        self._generation += 1
        index = self._indexes.get(predicate)
        if index is not None:
            index.add(values)
        self._groups.pop(predicate, None)

    def _after_delete(self, predicate: str, values: Row, rows: Set[Row]) -> None:
        self._generation += 1
        if rows:
            index = self._indexes.get(predicate)
            if index is not None:
                index.discard(values)
        else:
            del self._tuples[predicate]
            self._indexes.pop(predicate, None)
            self._owned.discard(predicate)
        self._groups.pop(predicate, None)

    def add(self, fact: Fact) -> None:
        """Insert *fact* (no-op if already present)."""

        rel = self._schema.relation_from_arity(fact.predicate, fact.arity)
        if rel.arity != fact.arity:
            raise SchemaError(
                f"fact {fact} does not match schema {rel!r} (arity {rel.arity})"
            )
        if fact.values in self._tuples.get(fact.predicate, _EMPTY_ROWS):
            return
        rows = self._writable_rows(fact.predicate, create=True)
        assert rows is not None
        rows.add(fact.values)
        self._after_insert(fact.predicate, fact.values)

    def add_tuple(self, predicate: str, values: Sequence[Constant]) -> None:
        """Insert ``predicate(values)``."""

        self.add(Fact(predicate, values))

    def remove(self, fact: Fact) -> None:
        """Delete *fact*; raises ``KeyError`` if absent."""

        if fact.values not in self._tuples.get(fact.predicate, _EMPTY_ROWS):
            raise KeyError(f"fact {fact} not present in the instance")
        rows = self._writable_rows(fact.predicate)
        assert rows is not None
        rows.remove(fact.values)
        self._after_delete(fact.predicate, fact.values, rows)

    def discard(self, fact: Fact) -> None:
        """Delete *fact* if present (no error otherwise)."""

        if fact.values not in self._tuples.get(fact.predicate, _EMPTY_ROWS):
            return
        rows = self._writable_rows(fact.predicate)
        assert rows is not None
        rows.discard(fact.values)
        self._after_delete(fact.predicate, fact.values, rows)

    # ------------------------------------------------------------------ access
    @property
    def schema(self) -> DatabaseSchema:
        """The schema the instance conforms to."""

        return self._schema

    @property
    def generation(self) -> int:
        """The mutation counter (see ``__init__``); equal generations of the
        same instance object guarantee unchanged contents, so derived state
        (violation sets, query plans, rewritings) can be cached against it."""

        return self._generation

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        return fact.values in self._tuples.get(fact.predicate, set())

    def contains_tuple(self, predicate: str, values: Sequence[Constant]) -> bool:
        """True iff ``predicate(values)`` is in the instance."""

        return Fact(predicate, values) in self

    def tuples(self, predicate: str) -> FrozenSet[Tuple[Constant, ...]]:
        """All value tuples of *predicate* (empty frozenset if none)."""

        return frozenset(self._tuples.get(predicate, set()))

    def rows(self, predicate: str) -> Set[Row]:
        """The live row set of *predicate* — read-only, do not mutate.

        The hot joins iterate this instead of :meth:`tuples` to avoid one
        frozenset copy per probe; callers must treat it as immutable and
        must not hold it across a mutation of the instance.
        """

        return self._tuples.get(predicate, _EMPTY_ROWS)  # type: ignore[return-value]

    def row_count(self, predicate: str) -> int:
        """Number of tuples of *predicate* (0 if the relation is empty)."""

        return len(self._tuples.get(predicate, _EMPTY_ROWS))

    # ------------------------------------------------------------------ indexes
    def _index(self, predicate: str) -> Optional[_PredicateIndex]:
        rows = self._tuples.get(predicate)
        if rows is None:
            return None
        index = self._indexes.get(predicate)
        if index is None:
            index = _PredicateIndex(len(next(iter(rows))), rows)
            self._indexes[predicate] = index
        return index

    def tuples_where(self, predicate: str, position: int, value: Constant) -> Set[Row]:
        """Indexed point lookup: the rows of *predicate* with ``row[position] == value``.

        Returns the live index bucket — read-only, same caveats as
        :meth:`rows`.  An out-of-range position yields the empty set.
        """

        index = self._index(predicate)
        if index is None or position >= index.arity:
            return _EMPTY_ROWS  # type: ignore[return-value]
        return index.rows_where(position, value)

    def tuples_matching(
        self, predicate: str, bound: Mapping[int, Constant]
    ) -> Iterable[Row]:
        """The rows of *predicate* agreeing with *bound* (position → value).

        With no bound positions this is :meth:`rows`; otherwise the most
        selective single-position index bucket is scanned and filtered on
        the remaining positions.
        """

        rows = self._tuples.get(predicate)
        if rows is None:
            return _EMPTY_ROWS
        if not bound:
            return rows
        index = self._index(predicate)
        assert index is not None
        if len(bound) == 1:
            # Single-position probe (the compiled kernel's common case):
            # one dictionary lookup, no schedule scan.
            ((position, value),) = bound.items()
            if position >= index.arity:
                return _EMPTY_ROWS
            return index.rows_where(position, value)
        if any(position >= index.arity for position in bound):
            return _EMPTY_ROWS
        best = min(bound, key=lambda p: len(index.rows_where(p, bound[p])))
        candidates = index.rows_where(best, bound[best])
        return [
            row
            for row in candidates
            if all(row[position] == value for position, value in bound.items())
        ]

    def rows_grouped_by(
        self, predicate: str, positions: Sequence[int]
    ) -> Mapping[Row, List[Row]]:
        """The rows of *predicate* grouped by their projection on *positions*.

        The grouping is cached until the relation is next mutated; the
        conflict graph's key-violation materialisation, the rewriting
        residues and the FD fast paths all share it.  Read-only.
        """

        key = tuple(positions)
        per_predicate = self._groups.setdefault(predicate, {})
        groups = per_predicate.get(key)
        if groups is None:
            groups = {}
            for row in self._tuples.get(predicate, _EMPTY_ROWS):
                groups.setdefault(tuple(row[p] for p in key), []).append(row)
            per_predicate[key] = groups
        return groups

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        """Iterate over facts, optionally restricted to one predicate."""

        predicates: Iterable[str]
        if predicate is None:
            predicates = sorted(self._tuples)
        else:
            predicates = [predicate] if predicate in self._tuples else []
        for pred in predicates:
            for values in sorted(self._tuples[pred], key=lambda vs: tuple(constant_sort_key(v) for v in vs)):
                yield Fact(pred, values)

    def fact_set(self) -> FrozenSet[Fact]:
        """The instance as a frozen set of facts."""

        return frozenset(self.facts())

    @property
    def predicates(self) -> List[str]:
        """Sorted names of the relations with at least one tuple."""

        return sorted(self._tuples)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._tuples.values())

    def __iter__(self) -> Iterator[Fact]:
        return self.facts()

    def __bool__(self) -> bool:
        return len(self) > 0

    # ------------------------------------------------------------------ domain
    def active_domain(self, include_null: bool = False) -> FrozenSet[Constant]:
        """``adom(D)``: the constants occurring in the instance.

        Per the paper's convention, ``null`` is excluded unless
        *include_null* is true (Proposition 1 adds it back explicitly).
        """

        values: Set[Constant] = set()
        for rows in self._tuples.values():
            for row in rows:
                for value in row:
                    if include_null or not is_null(value):
                        values.add(value)
        return frozenset(values)

    def has_nulls(self) -> bool:
        """True iff any fact contains a ``null`` value."""

        return any(fact.has_null() for fact in self.facts())

    def null_count(self) -> int:
        """Total number of ``null`` occurrences in the instance."""

        return sum(len(fact.null_positions()) for fact in self.facts())

    # ------------------------------------------------------------------ set ops
    def copy(self) -> "DatabaseInstance":
        """Cheap copy-on-write copy.

        The clone shares every relation's row set, hash index and group
        cache with ``self``; both sides privatise a relation the first time
        they mutate it (see :meth:`_writable_rows`), so copying is O(number
        of relations) regardless of instance size.  This is what lets the
        repair search branch thousands of times — and the parallel search
        of :mod:`repro.core.parallel` hand every worker its own working
        instance — without ever duplicating unchanged relations.

        >>> original = DatabaseInstance.from_dict({"P": [(1, 2)]})
        >>> clone = original.copy()
        >>> clone.add_tuple("P", (3, 4))
        >>> (len(original), len(clone))
        (1, 2)
        """

        clone = DatabaseInstance(schema=self._schema.copy())
        clone._generation = self._generation
        clone._tuples = dict(self._tuples)
        clone._indexes = dict(self._indexes)
        clone._groups = dict(self._groups)
        clone._owned = set()
        self._owned = set()  # the originals are shared now, too
        return clone

    def union(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Instance containing the facts of both operands."""

        result = self.copy()
        for fact in other.facts():
            result.add(fact)
        return result

    def difference(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Facts of ``self`` not present in *other*."""

        result = DatabaseInstance(schema=self._schema.copy())
        for fact in self.facts():
            if fact not in other:
                result.add(fact)
        return result

    def symmetric_difference(self, other: "DatabaseInstance") -> FrozenSet[Fact]:
        """``∆(self, other)`` as a frozen set of facts (the paper's distance)."""

        return frozenset(self.fact_set() ^ other.fact_set())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self.fact_set() == other.fact_set()

    def __hash__(self) -> int:
        return hash(self.fact_set())

    # ------------------------------------------------------------------ export
    def to_dict(self) -> Dict[str, List[Tuple[Constant, ...]]]:
        """Plain-Python view ``{"P": [rows...]}`` in deterministic order."""

        return {
            pred: [fact.values for fact in self.facts(pred)]
            for pred in self.predicates
        }

    def pretty(self) -> str:
        """Multi-line, table-per-relation rendering used by the examples."""

        lines: List[str] = []
        for pred in self.predicates:
            rel = self._schema.relation(pred) if pred in self._schema else None
            header = (
                f"{pred}({', '.join(rel.attributes)})" if rel is not None else pred
            )
            lines.append(header)
            for fact in self.facts(pred):
                lines.append("  " + ", ".join(format_constant(v) for v in fact.values))
        return "\n".join(lines)

    def __repr__(self) -> str:
        inner = ", ".join(repr(fact) for fact in self.facts())
        return "{" + inner + "}"
