"""Database instances as finite sets of ground atoms.

An instance ``D`` compatible with a schema ``Σ`` is a finite collection of
ground atoms ``R(c_1, …, c_n)`` with ``R ∈ R`` and ``c_i ∈ U`` (possibly
``null``).  Following the paper we use the *set* semantics (Example 7
discusses why the SQL bag semantics cannot be enforced with first-order
constraints): duplicate tuples collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.domain import (
    Constant,
    NULL,
    constant_sort_key,
    format_constant,
    is_null,
    normalise_constant,
)
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError


@dataclass(frozen=True)
class Fact:
    """A ground database atom ``R(c_1, …, c_n)``."""

    predicate: str
    values: Tuple[Constant, ...]

    def __init__(self, predicate: str, values: Sequence[Constant]):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(
            self, "values", tuple(normalise_constant(v) for v in values)
        )

    @property
    def arity(self) -> int:
        """Number of values in the atom."""

        return len(self.values)

    def has_null(self) -> bool:
        """True iff any value of the atom is ``null``."""

        return any(is_null(v) for v in self.values)

    def null_positions(self) -> Tuple[int, ...]:
        """0-based positions whose value is ``null``."""

        return tuple(i for i, v in enumerate(self.values) if is_null(v))

    def non_null_positions(self) -> Tuple[int, ...]:
        """0-based positions whose value is not ``null``."""

        return tuple(i for i, v in enumerate(self.values) if not is_null(v))

    def project(self, positions: Sequence[int]) -> "Fact":
        """Projection of the atom onto *positions*, keeping the predicate name."""

        return Fact(self.predicate, tuple(self.values[i] for i in positions))

    def agrees_on(self, other: "Fact", positions: Iterable[int]) -> bool:
        """True iff *other* has the same predicate and equal values at *positions*."""

        if self.predicate != other.predicate or self.arity != other.arity:
            return False
        return all(self.values[i] == other.values[i] for i in positions)

    def sort_key(self) -> Tuple[Any, ...]:
        """Deterministic ordering key for reporting."""

        return (self.predicate,) + tuple(constant_sort_key(v) for v in self.values)

    def __repr__(self) -> str:
        inner = ", ".join(format_constant(v) for v in self.values)
        return f"{self.predicate}({inner})"


class DatabaseInstance:
    """A finite set of :class:`Fact` objects over a :class:`DatabaseSchema`.

    The instance is mutable (facts can be added and removed) but cheap to
    copy; the repair engine works on copies.  Equality is extensional:
    two instances are equal iff they contain the same facts (the schema is
    compared by the relations actually populated).
    """

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        facts: Iterable[Fact] = (),
    ):
        self._schema = schema if schema is not None else DatabaseSchema()
        self._tuples: Dict[str, Set[Tuple[Constant, ...]]] = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[Constant]]],
        schema: Optional[DatabaseSchema] = None,
    ) -> "DatabaseInstance":
        """Build an instance from ``{"P": [(a, b), (c, None)], ...}``.

        ``None`` entries are converted to :data:`repro.relational.domain.NULL`.
        When *schema* is omitted one is inferred with generic attribute names.
        """

        instance = cls(schema=schema.copy() if schema is not None else DatabaseSchema())
        for predicate, rows in data.items():
            for row in rows:
                instance.add_tuple(predicate, row)
        return instance

    @classmethod
    def from_facts(
        cls, facts: Iterable[Fact], schema: Optional[DatabaseSchema] = None
    ) -> "DatabaseInstance":
        """Build an instance from an iterable of :class:`Fact`."""

        instance = cls(schema=schema.copy() if schema is not None else DatabaseSchema())
        for fact in facts:
            instance.add(fact)
        return instance

    # ------------------------------------------------------------------ mutate
    def add(self, fact: Fact) -> None:
        """Insert *fact* (no-op if already present)."""

        rel = self._schema.relation_from_arity(fact.predicate, fact.arity)
        if rel.arity != fact.arity:
            raise SchemaError(
                f"fact {fact} does not match schema {rel!r} (arity {rel.arity})"
            )
        self._tuples.setdefault(fact.predicate, set()).add(fact.values)

    def add_tuple(self, predicate: str, values: Sequence[Constant]) -> None:
        """Insert ``predicate(values)``."""

        self.add(Fact(predicate, values))

    def remove(self, fact: Fact) -> None:
        """Delete *fact*; raises ``KeyError`` if absent."""

        rows = self._tuples.get(fact.predicate, set())
        if fact.values not in rows:
            raise KeyError(f"fact {fact} not present in the instance")
        rows.remove(fact.values)
        if not rows:
            del self._tuples[fact.predicate]

    def discard(self, fact: Fact) -> None:
        """Delete *fact* if present (no error otherwise)."""

        rows = self._tuples.get(fact.predicate)
        if rows is None:
            return
        rows.discard(fact.values)
        if not rows:
            del self._tuples[fact.predicate]

    # ------------------------------------------------------------------ access
    @property
    def schema(self) -> DatabaseSchema:
        """The schema the instance conforms to."""

        return self._schema

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        return fact.values in self._tuples.get(fact.predicate, set())

    def contains_tuple(self, predicate: str, values: Sequence[Constant]) -> bool:
        """True iff ``predicate(values)`` is in the instance."""

        return Fact(predicate, values) in self

    def tuples(self, predicate: str) -> FrozenSet[Tuple[Constant, ...]]:
        """All value tuples of *predicate* (empty frozenset if none)."""

        return frozenset(self._tuples.get(predicate, set()))

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        """Iterate over facts, optionally restricted to one predicate."""

        predicates: Iterable[str]
        if predicate is None:
            predicates = sorted(self._tuples)
        else:
            predicates = [predicate] if predicate in self._tuples else []
        for pred in predicates:
            for values in sorted(self._tuples[pred], key=lambda vs: tuple(constant_sort_key(v) for v in vs)):
                yield Fact(pred, values)

    def fact_set(self) -> FrozenSet[Fact]:
        """The instance as a frozen set of facts."""

        return frozenset(self.facts())

    @property
    def predicates(self) -> List[str]:
        """Sorted names of the relations with at least one tuple."""

        return sorted(self._tuples)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._tuples.values())

    def __iter__(self) -> Iterator[Fact]:
        return self.facts()

    def __bool__(self) -> bool:
        return len(self) > 0

    # ------------------------------------------------------------------ domain
    def active_domain(self, include_null: bool = False) -> FrozenSet[Constant]:
        """``adom(D)``: the constants occurring in the instance.

        Per the paper's convention, ``null`` is excluded unless
        *include_null* is true (Proposition 1 adds it back explicitly).
        """

        values: Set[Constant] = set()
        for rows in self._tuples.values():
            for row in rows:
                for value in row:
                    if include_null or not is_null(value):
                        values.add(value)
        return frozenset(values)

    def has_nulls(self) -> bool:
        """True iff any fact contains a ``null`` value."""

        return any(fact.has_null() for fact in self.facts())

    def null_count(self) -> int:
        """Total number of ``null`` occurrences in the instance."""

        return sum(len(fact.null_positions()) for fact in self.facts())

    # ------------------------------------------------------------------ set ops
    def copy(self) -> "DatabaseInstance":
        """Deep enough copy: new tuple sets, shared (immutable) schemas."""

        clone = DatabaseInstance(schema=self._schema.copy())
        clone._tuples = {pred: set(rows) for pred, rows in self._tuples.items()}
        return clone

    def union(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Instance containing the facts of both operands."""

        result = self.copy()
        for fact in other.facts():
            result.add(fact)
        return result

    def difference(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Facts of ``self`` not present in *other*."""

        result = DatabaseInstance(schema=self._schema.copy())
        for fact in self.facts():
            if fact not in other:
                result.add(fact)
        return result

    def symmetric_difference(self, other: "DatabaseInstance") -> FrozenSet[Fact]:
        """``∆(self, other)`` as a frozen set of facts (the paper's distance)."""

        return frozenset(self.fact_set() ^ other.fact_set())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self.fact_set() == other.fact_set()

    def __hash__(self) -> int:
        return hash(self.fact_set())

    # ------------------------------------------------------------------ export
    def to_dict(self) -> Dict[str, List[Tuple[Constant, ...]]]:
        """Plain-Python view ``{"P": [rows...]}`` in deterministic order."""

        return {
            pred: [fact.values for fact in self.facts(pred)]
            for pred in self.predicates
        }

    def pretty(self) -> str:
        """Multi-line, table-per-relation rendering used by the examples."""

        lines: List[str] = []
        for pred in self.predicates:
            rel = self._schema.relation(pred) if pred in self._schema else None
            header = (
                f"{pred}({', '.join(rel.attributes)})" if rel is not None else pred
            )
            lines.append(header)
            for fact in self.facts(pred):
                lines.append("  " + ", ".join(format_constant(v) for v in fact.values))
        return "\n".join(lines)

    def __repr__(self) -> str:
        inner = ", ".join(repr(fact) for fact in self.facts())
        return "{" + inner + "}"
