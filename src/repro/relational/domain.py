"""The database domain ``U`` and its distinguished ``null`` constant.

The paper fixes a relational schema ``Σ = (U, R, B)`` whose domain ``U``
contains a single, unlabelled null constant (``null ∈ U``).  Commercial
DBMSs treat ``NULL`` specially: it compares as *unknown* to every value,
including itself, and the unique-names assumption does not apply to it.  The
paper's semantics, however, frequently needs to treat ``null`` *as an
ordinary constant* (e.g. when evaluating the rewritten constraint ``ψ_N``
over the projected instance ``D^A``), and introduces the ``IsNull``
predicate to test for it explicitly.

We therefore model ``null`` as a singleton sentinel object :data:`NULL`
that is hashable and equal only to itself, so that it can participate in
sets, joins and dictionaries exactly like any other constant, while code
that needs SQL's three-valued behaviour checks :func:`is_null` explicitly.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple, Union


class Null:
    """Singleton marker for the SQL ``NULL`` constant.

    Only one instance, :data:`NULL`, should ever exist.  The class is kept
    public so that type annotations can refer to it, but user code should
    always use the :data:`NULL` singleton and :func:`is_null`.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __str__(self) -> str:
        return "null"

    def __hash__(self) -> int:
        return hash("__repro_null__")

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Null)

    def __lt__(self, other: Any) -> bool:
        # Nulls sort before every other constant; this gives deterministic
        # orderings for reporting and never influences semantics.
        return not isinstance(other, Null)

    def __gt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return isinstance(other, Null)

    def __reduce__(self) -> "Tuple[type, Tuple[()]]":
        # Preserve the singleton across pickling (used by hypothesis shrinking).
        return (Null, ())


#: The single null constant of the domain ``U``.
NULL = Null()

#: Type alias for values that may appear in a database tuple.
Constant = Union[str, int, float, bool, Null]


def is_null(value: Any) -> bool:
    """Return ``True`` iff *value* is the distinguished ``null`` constant.

    ``None`` is also accepted as a null for convenience when ingesting data
    from Python structures or DB-API rows, where ``None`` is the customary
    representation of SQL ``NULL``.
    """

    return value is None or isinstance(value, Null)


def normalise_constant(value: Any) -> Constant:
    """Map external representations of null (``None``) onto :data:`NULL`.

    All other values are returned unchanged.  Instances built through
    :class:`repro.relational.instance.DatabaseInstance` run every value
    through this function so that the rest of the library only ever sees
    :data:`NULL`.
    """

    if value is None:
        return NULL
    return value


def constant_sort_key(value: Constant) -> Tuple[int, str, str]:
    """A total order over heterogeneous constants used for reporting.

    Python 3 refuses to compare values of different types (``2 < "a"``
    raises), yet repairs and answers routinely mix strings, integers and
    ``null``.  Sorting by ``(type rank, type name, repr)`` gives a stable,
    deterministic order for display and golden tests without imposing any
    semantic meaning.
    """

    if is_null(value):
        rank = 0
    elif isinstance(value, bool):
        rank = 1
    elif isinstance(value, (int, float)):
        rank = 2
    else:
        rank = 3
    return (rank, type(value).__name__, repr(value))


def format_constant(value: Constant) -> str:
    """Render a constant the way the paper prints it (``null`` unquoted)."""

    if is_null(value):
        return "null"
    if isinstance(value, str):
        return value
    return repr(value)


def ensure_hashable(value: Any) -> Hashable:
    """Raise ``TypeError`` early if *value* cannot be used as a constant."""

    hash(value)
    return value
