"""Relation and database schemas.

A :class:`RelationSchema` is a predicate name together with a finite,
ordered list of attribute names (the paper's ``R ∈ R`` with positions
``R[1] … R[n]``; we use 0-based positions internally and expose helpers to
translate from the paper's 1-based notation).  A :class:`DatabaseSchema`
is a collection of relation schemas sharing the common domain ``U``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class SchemaError(ValueError):
    """Raised for malformed schemas or schema/instance mismatches."""


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with a fixed, ordered tuple of attribute names."""

    name: str
    attributes: Tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError("relation name must be a non-empty string")
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attribute names: {attrs}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""

        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """0-based position of *attribute*; raises ``SchemaError`` if unknown."""

        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known attributes: {self.attributes}"
            ) from exc

    def attribute(self, position: int) -> str:
        """Attribute name at 0-based *position*."""

        if not 0 <= position < self.arity:
            raise SchemaError(
                f"position {position} out of range for relation {self.name!r} "
                f"of arity {self.arity}"
            )
        return self.attributes[position]

    def paper_position(self, position_1based: int) -> int:
        """Translate the paper's 1-based ``R[i]`` notation to a 0-based index."""

        if not 1 <= position_1based <= self.arity:
            raise SchemaError(
                f"{self.name}[{position_1based}] out of range (arity {self.arity})"
            )
        return position_1based - 1

    def project(self, positions: Sequence[int], name: Optional[str] = None) -> "RelationSchema":
        """Schema of the projection of this relation onto *positions*.

        Used to build the projected instance ``D^A`` of Definition 3.  The
        projected relation keeps the original attribute names (restricted
        to the kept positions) and, by default, the original relation name,
        mirroring the paper's notation ``P^A``.
        """

        attrs = tuple(self.attributes[i] for i in positions)
        return RelationSchema(name or self.name, attrs)

    def __repr__(self) -> str:
        cols = ", ".join(self.attributes)
        return f"{self.name}({cols})"


class DatabaseSchema:
    """A set of relation schemas keyed by relation name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:  # noqa: D401
        self._relations: Dict[str, RelationSchema] = {}
        for rel in relations:
            self.add_relation(rel)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_dict(cls, spec: Mapping[str, Sequence[str]]) -> "DatabaseSchema":
        """Build a schema from ``{"P": ["A", "B"], ...}``."""

        return cls(RelationSchema(name, attrs) for name, attrs in spec.items())

    def add_relation(self, relation: RelationSchema) -> None:
        """Register a relation schema; duplicate names must be identical."""

        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise SchemaError(
                f"conflicting definitions for relation {relation.name!r}: "
                f"{existing} vs {relation}"
            )
        self._relations[relation.name] = relation

    def relation_from_arity(self, name: str, arity: int) -> RelationSchema:
        """Return the relation *name*, creating a generic one if unknown.

        Convenience used by parsers and the ASP bridge: attributes are named
        ``a1 … an`` when the relation was never declared explicitly.
        """

        if name in self._relations:
            rel = self._relations[name]
            if rel.arity != arity:
                raise SchemaError(
                    f"relation {name!r} declared with arity {rel.arity}, used with {arity}"
                )
            return rel
        rel = RelationSchema(name, tuple(f"a{i + 1}" for i in range(arity)))
        self.add_relation(rel)
        return rel

    # ------------------------------------------------------------------ access
    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation *name* (``SchemaError`` if missing)."""

        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(
                f"unknown relation {name!r}; known relations: {sorted(self._relations)}"
            ) from exc

    def arity(self, name: str) -> int:
        """Arity of relation *name*."""

        return self.relation(name).arity

    @property
    def relation_names(self) -> List[str]:
        """Sorted list of relation names."""

        return sorted(self._relations)

    def relations(self) -> Iterator[RelationSchema]:
        """Iterate over relation schemas in name order."""

        for name in self.relation_names:
            yield self._relations[name]

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        rels = "; ".join(repr(r) for r in self.relations())
        return f"DatabaseSchema({rels})"

    # ------------------------------------------------------------------ misc
    def copy(self) -> "DatabaseSchema":
        """Shallow copy (relation schemas are immutable)."""

        return DatabaseSchema(self.relations())

    def merged_with(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas; conflicting relation definitions raise."""

        merged = self.copy()
        for rel in other.relations():
            merged.add_relation(rel)
        return merged
