"""A small named-attribute relational-algebra layer.

The constraint checker and query evaluator mostly work directly on
:class:`repro.relational.instance.DatabaseInstance`, but the workload
generators, the SQL backend tests and a couple of examples benefit from a
conventional relational-algebra toolkit (selection, projection, natural
join, renaming, union, difference) over relations with named attributes.

Null handling follows the paper's convention for ``D^A``-style reasoning:
``null`` is an ordinary constant for set operations and joins *unless* the
caller requests SQL three-valued behaviour with ``sql_nulls=True`` in
:meth:`Relation.select` and :meth:`Relation.natural_join` (in which case a
comparison involving ``null`` never holds, mirroring the simple-match
behaviour of commercial DBMSs).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.domain import Constant, constant_sort_key, is_null
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import SchemaError


Row = Tuple[Constant, ...]


class Relation:
    """An immutable relation: attribute names plus a set of rows."""

    def __init__(self, attributes: Sequence[str], rows: Iterable[Sequence[Constant]] = ()) -> None:  # noqa: D401
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names: {attrs}")
        self._attributes = attrs
        normalised: Set[Row] = set()
        for row in rows:
            row_t = tuple(row)
            if len(row_t) != len(attrs):
                raise SchemaError(
                    f"row {row_t} does not match attributes {attrs}"
                )
            normalised.add(row_t)
        self._rows: FrozenSet[Row] = frozenset(normalised)

    # ------------------------------------------------------------------ basics
    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names, in order."""

        return self._attributes

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of rows."""

        return self._rows

    def sorted_rows(self) -> List[Row]:
        """Rows in a deterministic order (for display and golden tests)."""

        return sorted(
            self._rows, key=lambda row: tuple(constant_sort_key(v) for v in row)
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> "Iterator[Row]":
        return iter(self.sorted_rows())

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._attributes == other._attributes and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._attributes, self._rows))

    def __repr__(self) -> str:
        return f"Relation({list(self._attributes)}, {self.sorted_rows()})"

    def _position(self, attribute: str) -> int:
        try:
            return self._attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"unknown attribute {attribute!r}; have {self._attributes}"
            ) from exc

    # ------------------------------------------------------------------ algebra
    def select(
        self,
        predicate: Callable[[Mapping[str, Constant]], bool],
        sql_nulls: bool = False,
    ) -> "Relation":
        """Rows for which *predicate* (a function of an attr→value mapping) holds.

        With ``sql_nulls=True`` any row containing a ``null`` among the
        attributes *accessed* cannot be distinguished, so the caller's
        predicate receives the row as usual but any exception due to null
        comparisons is treated as "unknown" (row filtered out).
        """

        kept: List[Row] = []
        for row in self._rows:
            mapping = dict(zip(self._attributes, row))
            try:
                keep = predicate(mapping)
            except TypeError:
                if sql_nulls:
                    keep = False
                else:
                    raise
            if keep:
                kept.append(row)
        return Relation(self._attributes, kept)

    def where_equals(self, attribute: str, value: Constant, sql_nulls: bool = False) -> "Relation":
        """Shorthand selection ``σ_{attribute = value}``."""

        pos = self._position(attribute)
        if sql_nulls and is_null(value):
            return Relation(self._attributes, [])
        rows = [
            row
            for row in self._rows
            if (not (sql_nulls and is_null(row[pos]))) and row[pos] == value
        ]
        return Relation(self._attributes, rows)

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection ``π_attributes`` (duplicates collapse, set semantics)."""

        positions = [self._position(a) for a in attributes]
        rows = {tuple(row[p] for p in positions) for row in self._rows}
        return Relation(tuple(attributes), rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes according to *mapping* (missing names unchanged)."""

        attrs = tuple(mapping.get(a, a) for a in self._attributes)
        return Relation(attrs, self._rows)

    def natural_join(self, other: "Relation", sql_nulls: bool = False) -> "Relation":
        """Natural join on the shared attribute names.

        With ``sql_nulls=True`` a shared attribute valued ``null`` never
        joins (SQL behaviour); otherwise ``null`` joins with ``null`` like
        any other constant (the behaviour needed for ``D^A |= ψ_N``,
        cf. Example 12 of the paper).
        """

        shared = [a for a in self._attributes if a in other._attributes]
        other_only = [a for a in other._attributes if a not in shared]
        out_attrs = self._attributes + tuple(other_only)
        self_pos = {a: self._position(a) for a in shared}
        other_pos = {a: other._position(a) for a in shared}
        other_only_pos = [other._position(a) for a in other_only]

        # Hash join on the shared attributes.
        index: Dict[Tuple[Constant, ...], List[Row]] = {}
        for row in other._rows:
            key = tuple(row[other_pos[a]] for a in shared)
            if sql_nulls and any(is_null(v) for v in key):
                continue
            index.setdefault(key, []).append(row)

        out_rows: List[Row] = []
        for row in self._rows:
            key = tuple(row[self_pos[a]] for a in shared)
            if sql_nulls and any(is_null(v) for v in key):
                continue
            for other_row in index.get(key, []):
                out_rows.append(row + tuple(other_row[p] for p in other_only_pos))
        return Relation(out_attrs, out_rows)

    def union(self, other: "Relation") -> "Relation":
        """Set union; attribute lists must match exactly."""

        if self._attributes != other._attributes:
            raise SchemaError(
                f"union of incompatible relations: {self._attributes} vs {other._attributes}"
            )
        return Relation(self._attributes, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; attribute lists must match exactly."""

        if self._attributes != other._attributes:
            raise SchemaError(
                f"difference of incompatible relations: {self._attributes} vs {other._attributes}"
            )
        return Relation(self._attributes, self._rows - other._rows)

    def cross(self, other: "Relation") -> "Relation":
        """Cartesian product; attribute names must be disjoint."""

        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise SchemaError(f"cross product with overlapping attributes: {overlap}")
        rows = [a + b for a in self._rows for b in other._rows]
        return Relation(self._attributes + other._attributes, rows)

    # ------------------------------------------------------------------ bridges
    @classmethod
    def from_instance(cls, instance: DatabaseInstance, predicate: str) -> "Relation":
        """Extract relation *predicate* of *instance* with its schema attributes."""

        rel_schema = instance.schema.relation(predicate)
        return cls(rel_schema.attributes, instance.tuples(predicate))


def instance_relation(instance: DatabaseInstance, predicate: str) -> Relation:
    """Module-level convenience wrapper around :meth:`Relation.from_instance`."""

    return Relation.from_instance(instance, predicate)
