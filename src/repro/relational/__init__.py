"""Relational substrate: domains with nulls, schemas, instances, and algebra.

This package provides the minimal relational-database machinery the paper
assumes as given: a possibly infinite domain ``U`` that contains a
distinguished ``null`` constant, relation schemas with named, ordered
attributes, database instances as finite sets of ground atoms, and a small
relational-algebra layer used by the query evaluator and the workload
generators.
"""

from repro.relational.domain import NULL, Null, is_null, constant_sort_key
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.instance import DatabaseInstance, Fact
from repro.relational.algebra import Relation

__all__ = [
    "NULL",
    "Null",
    "is_null",
    "constant_sort_key",
    "RelationSchema",
    "DatabaseSchema",
    "DatabaseInstance",
    "Fact",
    "Relation",
]
