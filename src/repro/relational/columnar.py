"""Columnar execution backend: interned per-position arrays + batch joins.

The row-at-a-time kernel (interpreted or code-generated) pays Python's
per-row toll — one iterator step, one probe, one guard cascade per
candidate tuple.  This module turns a :class:`~repro.relational.instance.
DatabaseInstance` into a *columnar store*: every predicate becomes one
``array('q')`` of interned value ids per position (the intern table maps
each distinct domain constant to a small integer, with id ``0`` reserved
as the null sentinel), plus lazy per-column hash indexes mapping value id
→ row ids.  A whole :class:`~repro.compile.plans.JoinPlan` then executes
column-at-a-time: filter each step's rows into a selection vector
(constant/equality/null-guard masks over int columns), extend partial
matches by probing the per-column indexes with ids read straight out of
the source columns, and only materialise slots and original rows for the
matches that survive.

The store is derived state: :func:`store_for` keys it on the instance's
``generation`` counter and rebuilds on change, so it is only engaged on
*full* sweeps over a stable instance (constraint violation enumeration,
query answering) — the repair search's seeded delta plans keep running
row-at-a-time against the live, mutating instance.  Budgeted requests
also stay on the row path (:func:`usable`): the row executor checkpoints
per join descent, which is the cancellation granularity the resilience
layer promises.

The same interned columns are the parallel pool's wire format:
:func:`pack_instance` / :func:`unpack_instance` serialise a store to one
flat byte string (intern table + column arrays) that
:mod:`repro.core.parallel` places in ``multiprocessing.shared_memory``,
and :class:`FactCodec` numbers the base facts in their deterministic
``facts()`` order so frontier tasks ship small integers instead of
pickled :class:`~repro.relational.instance.Fact` objects.

Fallback knobs mirror the code generator: ``REPRO_COLUMNAR=0``,
:func:`overridden` (threaded from ``CQAConfig.columnar``), and
:func:`set_enabled`.  The batch path is pinned bit-identical (as a set;
enumeration order may differ from the nested-loop order) against the
interpreter by the property suite, and lint rule INV006 keeps this
module out of every reference path so the cross-validation is never
circular.
"""

from __future__ import annotations

import os
import pickle
import weakref
from array import array
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.relational.domain import NULL, Constant, constant_sort_key, is_null
from repro.relational.instance import DatabaseInstance, Fact, Row
from repro.resilience import budget as _budget

#: Interned id of the null sentinel — every column encodes ``null`` as 0.
NULL_ID = 0

_PACK_MAGIC = "repro-columnar-pack-v1"

_ENV_FLAG = "REPRO_COLUMNAR"
_DEFAULT_ENABLED = True
_FORCED: Optional[bool] = None

_STORE_BUILDS = _metrics.counter(
    "repro_columnar_store_builds_total", "columnar store (re)builds from an instance"
)
_STORE_ROWS = _metrics.counter(
    "repro_columnar_store_rows_total", "rows interned into columnar stores"
)
_BATCH_RUNS = _metrics.counter(
    "repro_columnar_batch_runs_total", "join plans executed column-at-a-time"
)


def enabled() -> bool:
    """Is columnar batch execution active for the current call?"""

    if os.environ.get(_ENV_FLAG, "") == "0":
        return False
    if _FORCED is not None:
        return _FORCED
    return _DEFAULT_ENABLED


def set_enabled(on: bool) -> None:
    """Flip the process-wide default (``REPRO_COLUMNAR=0`` still wins)."""

    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = on


@contextmanager
def overridden(on: Optional[bool]) -> Iterator[None]:
    """Scoped enable/disable override; ``None`` leaves the state alone."""

    global _FORCED
    if on is None:
        yield
        return
    previous = _FORCED
    _FORCED = on
    try:
        yield
    finally:
        _FORCED = previous


def usable(relations: object) -> bool:
    """Should a full-plan sweep over *relations* take the batch path?

    Requires the real :class:`DatabaseInstance` (adapters like the
    EXPLAIN ANALYZE row counter keep their row-at-a-time semantics), the
    enable flag, and **no active budget** — the row executor checkpoints
    per join descent, which is the cancellation granularity budgeted
    requests are promised.
    """

    return (
        type(relations) is DatabaseInstance
        and enabled()
        and not _budget.active()
    )


def _row_sort_key(row: Row) -> Tuple[Any, ...]:
    return tuple(constant_sort_key(value) for value in row)


class ColumnarRelation:
    """One predicate's rows as interned per-position columns.

    ``rows`` holds the original value tuples (shared with the source
    instance) in deterministic sorted order — the batch evaluator
    materialises matches from them without un-interning.  ``columns[p]``
    is an ``array('q')`` of value ids; :meth:`index` builds the id → row
    ids hash index for one position on first use.
    """

    __slots__ = ("predicate", "arity", "rows", "columns", "_indexes")

    def __init__(
        self,
        predicate: str,
        arity: int,
        rows: List[Row],
        columns: List["array[int]"],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.rows = rows
        self.columns = columns
        self._indexes: List[Optional[Dict[int, List[int]]]] = [None] * arity

    def index(self, position: int) -> Dict[int, List[int]]:
        """The hash index value-id → row ids for *position* (built lazily)."""

        index = self._indexes[position]
        if index is None:
            index = {}
            for row_id, value_id in enumerate(self.columns[position]):
                index.setdefault(value_id, []).append(row_id)
            self._indexes[position] = index
        return index


class ColumnarStore:
    """A whole instance as interned columns, frozen at one generation."""

    __slots__ = ("values", "ids", "relations", "generation", "_filters")

    def __init__(self, generation: int = 0) -> None:
        #: id → value; ``values[0]`` is the null sentinel.
        self.values: List[Constant] = [NULL]
        #: non-null value → id (null never appears as a key).
        self.ids: Dict[Constant, int] = {}
        self.relations: Dict[str, ColumnarRelation] = {}
        self.generation = generation
        #: Per-(program, step) selection vectors, keyed by program identity
        #: — programs live on the process-wide compile memo's plans, the
        #: store dies with its generation, so the cache cannot go stale.
        self._filters: Dict[Tuple[int, int], "_StepFilter"] = {}

    def intern(self, value: Constant) -> int:
        """The id of *value*, interning it on first sight (null → 0)."""

        if is_null(value):
            return NULL_ID
        value_id = self.ids.get(value)
        if value_id is None:
            value_id = len(self.values)
            self.values.append(value)
            self.ids[value] = value_id
        return value_id

    def lookup(self, value: Constant) -> Optional[int]:
        """The id of *value* if it occurs in the store, else ``None``."""

        if is_null(value):
            return NULL_ID
        return self.ids.get(value)

    @classmethod
    def from_instance(cls, instance: DatabaseInstance) -> "ColumnarStore":
        """Intern every relation of *instance* (deterministic row order)."""

        store = cls(generation=instance.generation)
        n_rows = 0
        for predicate in instance.predicates:
            rows = sorted(instance.rows(predicate), key=_row_sort_key)
            if not rows:
                continue
            arity = len(rows[0])
            columns: List["array[int]"] = [array("q") for _ in range(arity)]
            for row in rows:
                for position in range(arity):
                    columns[position].append(store.intern(row[position]))
            store.relations[predicate] = ColumnarRelation(
                predicate, arity, rows, columns
            )
            n_rows += len(rows)
        _STORE_BUILDS.inc()
        _STORE_ROWS.inc(n_rows)
        return store


#: Live stores keyed by instance identity; entries die with the instance.
_STORES: Dict[int, ColumnarStore] = {}


def _forget_store(key: int) -> None:
    _STORES.pop(key, None)


def store_for(instance: DatabaseInstance) -> ColumnarStore:
    """The columnar store of *instance*, rebuilt when its generation moved."""

    key = id(instance)
    store = _STORES.get(key)
    if store is not None and store.generation == instance.generation:
        return store
    with _trace.span("columnar.build") as sp:
        fresh = ColumnarStore.from_instance(instance)
        if sp:
            sp.add(rows=len(instance), predicates=len(fresh.relations))
    if store is None:
        weakref.finalize(instance, _forget_store, key)
    _STORES[key] = fresh
    return fresh


# ------------------------------------------------------------- batch programs


class _BatchStep:
    """One scheduled atom, rewritten for columnar execution.

    ``const`` keeps the original constants (interned per store at run
    time); ``bound`` resolves each probe position to the (step, position)
    that first bound its slot, so probe ids come straight out of the
    source column; ``eq`` and ``guard_positions`` are row-local checks
    over the step's own columns.
    """

    __slots__ = ("predicate", "arity", "const", "bound", "eq", "guard_positions")

    def __init__(
        self,
        predicate: str,
        arity: int,
        const: Tuple[Tuple[int, Constant], ...],
        bound: Tuple[Tuple[int, int, int], ...],
        eq: Tuple[Tuple[int, int], ...],
        guard_positions: Tuple[int, ...],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.const = const
        self.bound = bound
        self.eq = eq
        self.guard_positions = guard_positions


class _BatchProgram:
    """A full :class:`JoinPlan` lowered to columnar steps."""

    __slots__ = ("steps", "slot_sources", "atom_indexes")

    def __init__(
        self,
        steps: Tuple[_BatchStep, ...],
        slot_sources: Tuple[Tuple[int, int, int], ...],
        atom_indexes: Tuple[int, ...],
    ) -> None:
        self.steps = steps
        #: (slot, step, position) for every variable slot the plan binds.
        self.slot_sources = slot_sources
        self.atom_indexes = atom_indexes


class _StepFilter:
    """One step's selection vector over its relation at one generation."""

    __slots__ = ("mask", "candidates")

    def __init__(self, mask: bytearray, candidates: List[int]) -> None:
        self.mask = mask
        self.candidates = candidates


_PROGRAM_ATTR = "_columnar_program"
_MISSING = object()


def batch_program(plan: Any) -> Optional[_BatchProgram]:
    """The columnar program for *plan*, or ``None`` if it cannot batch.

    Only *full* plans batch: a seed matcher or a binding pattern means
    the caller is running a delta/partial sweep against a live instance,
    which stays row-at-a-time.  The program is cached on the plan object
    (which lives in the process-wide compile memo).
    """

    cached = plan.__dict__.get(_PROGRAM_ATTR, _MISSING)
    if cached is not _MISSING:
        return cached  # type: ignore[no-any-return]
    program = _compile_batch(plan)
    object.__setattr__(plan, _PROGRAM_ATTR, program)
    return program


def _compile_batch(plan: Any) -> Optional[_BatchProgram]:
    if plan.seed is not None or plan.initial:
        return None
    slot_source: Dict[int, Tuple[int, int]] = {}
    steps: List[_BatchStep] = []
    for step_index, step in enumerate(plan.steps):
        bound: List[Tuple[int, int, int]] = []
        for position, slot in step.bound:
            source = slot_source.get(slot)
            if source is None:  # unreachable for kernel-built plans
                return None
            bound.append((position, source[0], source[1]))
        guarded = set(step.guard)
        guard_positions = tuple(
            position for position, slot in step.writes if slot in guarded
        )
        for position, slot in step.writes:
            if slot not in slot_source:
                slot_source[slot] = (step_index, position)
        steps.append(
            _BatchStep(
                step.predicate,
                step.arity,
                step.const,
                tuple(bound),
                step.eq,
                guard_positions,
            )
        )
    slot_sources = tuple(
        (slot, source[0], source[1]) for slot, source in slot_source.items()
    )
    atom_indexes = tuple(step.atom_index for step in plan.steps)
    return _BatchProgram(tuple(steps), slot_sources, atom_indexes)


def _step_filter(
    store: ColumnarStore, program: _BatchProgram, step_index: int, rel: ColumnarRelation
) -> _StepFilter:
    """The cached selection vector of one step over one store."""

    key = (id(program), step_index)
    cached = store._filters.get(key)
    if cached is not None:
        return cached
    step = program.steps[step_index]
    n = len(rel.rows)
    mask = bytearray([1]) * n
    for position, value in step.const:
        value_id = store.lookup(value)
        if value_id is None:
            mask = bytearray(n)
            break
        column = rel.columns[position]
        for row_id in range(n):
            if column[row_id] != value_id:
                mask[row_id] = 0
    else:
        for position, first in step.eq:
            column, other = rel.columns[position], rel.columns[first]
            for row_id in range(n):
                if column[row_id] != other[row_id]:
                    mask[row_id] = 0
        for position in step.guard_positions:
            column = rel.columns[position]
            for row_id in range(n):
                if column[row_id] == NULL_ID:
                    mask[row_id] = 0
    candidates = [row_id for row_id in range(n) if mask[row_id]]
    filt = _StepFilter(mask, candidates)
    store._filters[key] = filt
    return filt


def iter_batch_matches(
    plan: Any,
    store: ColumnarStore,
    slots: List[Constant],
    rows: List[Optional[Row]],
) -> Iterator[None]:
    """Enumerate the matches of a full *plan* column-at-a-time.

    Same caller contract as :func:`repro.compile.plans.iter_plan_matches`
    (write into caller-owned ``slots``/``rows``, yield once per match),
    but the *enumeration order* follows the columnar row order, not the
    nested-loop order — consumers of full sweeps are order-insensitive.
    Requires ``batch_program(plan)`` to be non-``None``.
    """

    program = batch_program(plan)
    assert program is not None, "iter_batch_matches requires a full plan"
    steps = program.steps
    count = len(steps)
    if count == 0:
        yield
        return
    _BATCH_RUNS.inc()
    budget = _budget.active()
    rels: List[ColumnarRelation] = []
    for step in steps:
        rel = store.relations.get(step.predicate)
        if rel is None or not rel.rows or rel.arity != step.arity:
            return
        rels.append(rel)

    current: List[Tuple[int, ...]] = [
        (row_id,) for row_id in _step_filter(store, program, 0, rels[0]).candidates
    ]
    for step_index in range(1, count):
        if not current:
            return
        if budget:
            budget.checkpoint()
        step = steps[step_index]
        rel = rels[step_index]
        mask = _step_filter(store, program, step_index, rel).mask
        extended: List[Tuple[int, ...]] = []
        append = extended.append
        if step.bound:
            position, src_step, src_pos = step.bound[0]
            index = rel.index(position)
            src_col = rels[src_step].columns[src_pos]
            rest = step.bound[1:]
            if rest:
                columns = rel.columns
                for match in current:
                    bucket = index.get(src_col[match[src_step]])
                    if not bucket:
                        continue
                    for row_id in bucket:
                        if mask[row_id] and all(
                            columns[p][row_id] == rels[s].columns[q][match[s]]
                            for p, s, q in rest
                        ):
                            append(match + (row_id,))
            else:
                for match in current:
                    bucket = index.get(src_col[match[src_step]])
                    if bucket:
                        for row_id in bucket:
                            if mask[row_id]:
                                append(match + (row_id,))
        else:
            candidates = _step_filter(store, program, step_index, rel).candidates
            for match in current:
                for row_id in candidates:
                    append(match + (row_id,))
        current = extended

    all_rows = [rel.rows for rel in rels]
    atom_indexes = program.atom_indexes
    slot_sources = program.slot_sources
    for match in current:
        for step_index in range(count):
            rows[atom_indexes[step_index]] = all_rows[step_index][match[step_index]]
        for slot, src_step, src_pos in slot_sources:
            slots[slot] = all_rows[src_step][match[src_step]][src_pos]
        yield


# --------------------------------------------------------- pack / ship / codec


def pack_instance(instance: DatabaseInstance) -> bytes:
    """Serialise *instance* as interned columns (one flat byte string).

    The layout is the store itself: the intern table plus one
    ``array('q')`` per position per predicate.  Deterministic for equal
    instances, and typically far smaller than pickling the fact set —
    every distinct constant is written once.
    """

    store = store_for(instance)
    relations = tuple(
        (
            predicate,
            rel.arity,
            len(rel.rows),
            tuple(column.tobytes() for column in rel.columns),
        )
        for predicate, rel in sorted(store.relations.items())
    )
    payload = (_PACK_MAGIC, tuple(store.values), relations)
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_instance(data: bytes) -> DatabaseInstance:
    """Rebuild the :class:`DatabaseInstance` packed by :func:`pack_instance`."""

    magic, values, relations = pickle.loads(data)
    if magic != _PACK_MAGIC:
        raise ValueError(f"not a columnar pack (magic {magic!r})")
    tables: Dict[str, List[Sequence[Constant]]] = {}
    for predicate, arity, n_rows, column_bytes in relations:
        columns = [array("q") for _ in range(arity)]
        for position in range(arity):
            columns[position].frombytes(column_bytes[position])
        rows: List[Sequence[Constant]] = []
        for row_id in range(n_rows):
            rows.append(
                tuple(values[columns[position][row_id]] for position in range(arity))
            )
        tables[predicate] = rows
    return DatabaseInstance.from_dict(tables)


#: A shipped fact: a small integer for base facts, (predicate, values)
#: for facts outside the base instance (inserted witnesses).
FactToken = Union[int, Tuple[str, Row]]


class FactCodec:
    """Number the base instance's facts so deltas ship as small integers.

    Both pool ends derive the codec independently — the driver from its
    live instance, each worker from the instance it unpacked — and the
    numbering is the deterministic sorted ``facts()`` order, so the ids
    agree without ever shipping the mapping itself.
    """

    __slots__ = ("_facts", "_ids")

    def __init__(self, facts: Sequence[Fact]) -> None:
        self._facts: Tuple[Fact, ...] = tuple(facts)
        self._ids: Dict[Fact, int] = {
            fact: fact_id for fact_id, fact in enumerate(self._facts)
        }

    @classmethod
    def from_instance(cls, instance: DatabaseInstance) -> "FactCodec":
        return cls(tuple(instance.facts()))

    def __len__(self) -> int:
        return len(self._facts)

    def encode_fact(self, fact: Fact) -> FactToken:
        fact_id = self._ids.get(fact)
        if fact_id is not None:
            return fact_id
        return (fact.predicate, fact.values)

    def decode_fact(self, token: FactToken) -> Fact:
        if isinstance(token, int):
            return self._facts[token]
        predicate, values = token
        return Fact(predicate, values)

    def encode_facts(self, facts: Iterable[Fact]) -> Tuple[FactToken, ...]:
        """Encode a fact collection (sorted, so equal sets encode equally)."""

        ids: List[int] = []
        extra: List[Fact] = []
        for fact in facts:
            fact_id = self._ids.get(fact)
            if fact_id is not None:
                ids.append(fact_id)
            else:
                extra.append(fact)
        tokens: List[FactToken] = sorted(ids)  # type: ignore[assignment]
        tokens.extend(
            (fact.predicate, fact.values)
            for fact in sorted(extra, key=Fact.sort_key)
        )
        return tuple(tokens)

    def decode_facts(self, tokens: Iterable[FactToken]) -> FrozenSet[Fact]:
        return frozenset(self.decode_fact(token) for token in tokens)
