"""Classical (active-domain) evaluation of formulas over finite instances.

The evaluator implements the notion of satisfaction the paper relies on
when it writes ``D^{A(ψ)} |= ψ_N``: classical first-order satisfaction in
which ``null`` is treated as any other constant of the domain, and
quantifiers range over the *active domain* of the instance extended with
the constants of the formula and ``null`` (the rewritten constraints are
domain independent, so this restriction is sound — Section 3).

Comparisons involving ``null`` and an ordinary constant are only
meaningful for (in)equality; the null-aware rewriting guards every other
comparison with ``IsNull`` disjuncts, so order comparisons against null
are treated as *false* here (and a dedicated strict mode raises instead,
which the tests use to confirm the guards are in place).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.domain import Constant, NULL, is_null
from repro.relational.instance import DatabaseInstance
from repro.constraints.atoms import Atom, BuiltinEvaluationError, Comparison, IsNullAtom
from repro.constraints.terms import Variable, is_variable
from repro.logic.formula import (
    And,
    AtomFormula,
    ComparisonFormula,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    IsNullFormula,
    Not,
    Or,
    TrueFormula,
)


class EvaluationError(ValueError):
    """Raised when a formula cannot be evaluated (unbound variable, bad comparison)."""


Assignment = Dict[Variable, Constant]


def _formula_constants(formula: Formula) -> Set[Constant]:
    """Constants syntactically occurring in *formula*."""

    constants: Set[Constant] = set()
    stack: List[Formula] = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, AtomFormula):
            constants |= set(node.atom.constants())
        elif isinstance(node, ComparisonFormula):
            constants |= set(node.comparison.constants())
        elif isinstance(node, IsNullFormula):
            if not is_variable(node.atom.term):
                constants.add(node.atom.term)
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.extend(node.operands)
        elif isinstance(node, Implies):
            stack.extend((node.antecedent, node.consequent))
        elif isinstance(node, (Exists, ForAll)):
            stack.append(node.body)
    return constants


def evaluation_domain(
    instance: DatabaseInstance,
    formula: Formula,
    extra_constants: Iterable[Constant] = (),
) -> FrozenSet[Constant]:
    """The domain quantifiers range over: adom(D) ∪ const(formula) ∪ {null}."""

    domain: Set[Constant] = set(instance.active_domain(include_null=True))
    domain |= _formula_constants(formula)
    domain |= set(extra_constants)
    domain.add(NULL)
    return frozenset(domain)


def _atom_holds(instance: DatabaseInstance, atom: Atom, assignment: Assignment) -> bool:
    values: List[Constant] = []
    for term in atom.terms:
        if is_variable(term):
            if term not in assignment:
                raise EvaluationError(
                    f"variable {term} of atom {atom!r} is not bound; "
                    "quantify it or provide it in the assignment"
                )
            values.append(assignment[term])
        else:
            values.append(term)
    return instance.contains_tuple(atom.predicate, values)


def _comparison_holds(
    comparison: Comparison, assignment: Assignment, null_is_unknown: bool
) -> bool:
    try:
        return comparison.evaluate(assignment, null_is_unknown=null_is_unknown)
    except BuiltinEvaluationError:
        if null_is_unknown:
            return False
        # Order comparison against null without the SQL mode: the null-aware
        # rewriting guards these with IsNull; evaluating them as false keeps
        # the evaluator total (and matches "unknown ⇒ not satisfied").
        ground = comparison.substitute(assignment)
        if is_null(ground.left) or is_null(ground.right):
            return False
        raise


def evaluate(
    instance: DatabaseInstance,
    formula: Formula,
    assignment: Optional[Mapping[Variable, Constant]] = None,
    domain: Optional[Iterable[Constant]] = None,
    null_is_unknown: bool = False,
) -> bool:
    """Evaluate *formula* over *instance* under *assignment*.

    Parameters
    ----------
    instance:
        The database instance.
    formula:
        The formula; its free variables must be covered by *assignment*.
    assignment:
        Values for the free variables.
    domain:
        Values quantifiers range over; defaults to the active domain of the
        instance plus the constants of the formula plus ``null``.
    null_is_unknown:
        When true, comparisons involving ``null`` are unsatisfied (SQL
        three-valued logic collapsed to two values), which is how the
        simple-match semantics of commercial DBMSs behaves.
    """

    env: Assignment = dict(assignment or {})
    quantifier_domain: Tuple[Constant, ...] = tuple(
        domain if domain is not None else evaluation_domain(instance, formula)
    )

    def rec(node: Formula, env: Assignment) -> bool:
        if isinstance(node, TrueFormula):
            return True
        if isinstance(node, FalseFormula):
            return False
        if isinstance(node, AtomFormula):
            return _atom_holds(instance, node.atom, env)
        if isinstance(node, ComparisonFormula):
            return _comparison_holds(node.comparison, env, null_is_unknown)
        if isinstance(node, IsNullFormula):
            term = node.atom.term
            value = env.get(term, term) if is_variable(term) else term
            if is_variable(value):
                raise EvaluationError(f"variable {value} in IsNull is not bound")
            return is_null(value)
        if isinstance(node, Not):
            return not rec(node.operand, env)
        if isinstance(node, And):
            return all(rec(op, env) for op in node.operands)
        if isinstance(node, Or):
            return any(rec(op, env) for op in node.operands)
        if isinstance(node, Implies):
            return (not rec(node.antecedent, env)) or rec(node.consequent, env)
        if isinstance(node, Exists):
            return _eval_quantifier(node.variables, node.body, env, existential=True)
        if isinstance(node, ForAll):
            return _eval_quantifier(node.variables, node.body, env, existential=False)
        raise EvaluationError(f"unknown formula node {node!r}")

    def _eval_quantifier(
        variables: Tuple[Variable, ...],
        body: Formula,
        env: Assignment,
        existential: bool,
    ) -> bool:
        if not variables:
            return rec(body, env)
        head, rest = variables[0], variables[1:]
        for value in quantifier_domain:
            env2 = dict(env)
            env2[head] = value
            result = _eval_quantifier(rest, body, env2, existential)
            if existential and result:
                return True
            if not existential and not result:
                return False
        return not existential

    return rec(formula, env)


def holds(
    instance: DatabaseInstance,
    sentence: Formula,
    null_is_unknown: bool = False,
) -> bool:
    """Evaluate a sentence (no free variables allowed)."""

    free = sentence.free_variables()
    if free:
        raise EvaluationError(
            f"sentence expected, but variables {sorted(v.name for v in free)} are free"
        )
    return evaluate(instance, sentence, null_is_unknown=null_is_unknown)


def query_answers(
    instance: DatabaseInstance,
    head_variables: Sequence[Variable],
    formula: Formula,
    null_is_unknown: bool = False,
) -> FrozenSet[Tuple[Constant, ...]]:
    """All tuples of domain values for *head_variables* that satisfy *formula*.

    The search enumerates the evaluation domain for the head variables,
    which is adequate for safe queries (their answers are contained in the
    active domain).  Conjunctive queries should prefer the join-based
    evaluator in :mod:`repro.logic.queries`, which is much faster; this
    generic routine exists for arbitrary first-order queries.
    """

    free = formula.free_variables()
    missing = free - set(head_variables)
    if missing:
        raise EvaluationError(
            f"free variables {sorted(v.name for v in missing)} are not part of the query head"
        )
    domain = tuple(evaluation_domain(instance, formula))
    answers: Set[Tuple[Constant, ...]] = set()

    def assign(index: int, env: Assignment) -> None:
        if index == len(head_variables):
            if evaluate(
                instance, formula, env, domain=domain, null_is_unknown=null_is_unknown
            ):
                answers.add(tuple(env[v] for v in head_variables))
            return
        for value in domain:
            env[head_variables[index]] = value
            assign(index + 1, env)
        env.pop(head_variables[index], None)

    assign(0, {})
    return frozenset(answers)
