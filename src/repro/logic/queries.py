"""Queries: conjunctive queries with negation/comparisons and generic FO queries.

Consistent query answering (Definition 8) evaluates a fixed query in every
repair and keeps the answers common to all of them.  The repair sets can
be sizeable, so the per-repair evaluation must be cheap; conjunctive
queries therefore get a dedicated join-based evaluator, while arbitrary
first-order queries fall back to the generic active-domain evaluator of
:mod:`repro.logic.evaluation`.

Following Section 4 of the paper, the query-answering semantics ``|=^q_N``
is kept orthogonal to the IC-satisfaction semantics: by default ``null``
is treated as an ordinary constant (so a query can retrieve tuples
containing nulls), and ``null_is_unknown=True`` switches built-in
comparisons to the SQL behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant, is_null
from repro.relational.instance import DatabaseInstance
from repro.compile.matchers import extend_match
from repro.constraints.atoms import Atom, BuiltinEvaluationError, Comparison
from repro.constraints.terms import Variable, is_variable
from repro.logic.evaluation import EvaluationError, query_answers
from repro.logic.formula import Formula


AnswerSet = FrozenSet[Tuple[Constant, ...]]


class Query:
    """Common protocol of all query classes.

    Concrete subclasses provide ``head_variables`` (a tuple of output
    variables, empty for a boolean query), ``name`` and ``answers``.
    """

    name: str = "ans"
    head_variables: Tuple[Variable, ...]

    @property
    def is_boolean(self) -> bool:
        """True iff the query has no output variables."""

        return not self.head_variables

    def answers(self, instance: DatabaseInstance, null_is_unknown: bool = False) -> AnswerSet:
        """The set of answer tuples in *instance*."""

        raise NotImplementedError

    def holds(self, instance: DatabaseInstance, null_is_unknown: bool = False) -> bool:
        """For a boolean query: True iff the query is satisfied in *instance*."""

        if not self.is_boolean:
            raise EvaluationError("holds() is only defined for boolean queries")
        return bool(self.answers(instance, null_is_unknown=null_is_unknown))


@dataclass(frozen=True)
class ConjunctiveQuery(Query):
    """``ans(x̄) ← P_1(…), …, not N_1(…), …, comparisons``.

    Safety requirements: every head variable and every variable used in a
    negated atom or a comparison must occur in some positive atom.
    """

    head_variables: Tuple[Variable, ...] = ()
    positive_atoms: Tuple[Atom, ...] = ()
    negative_atoms: Tuple[Atom, ...] = ()
    comparisons: Tuple[Comparison, ...] = ()
    name: str = "ans"

    def __post_init__(self) -> None:
        if not self.positive_atoms:
            raise EvaluationError("a conjunctive query needs at least one positive atom")
        positive_vars: Set[Variable] = set()
        for atom in self.positive_atoms:
            positive_vars |= atom.variables()
        unsafe: Set[Variable] = set(self.head_variables) - positive_vars
        for atom in self.negative_atoms:
            unsafe |= atom.variables() - positive_vars
        for comparison in self.comparisons:
            unsafe |= comparison.variables() - positive_vars
        if unsafe:
            raise EvaluationError(
                "unsafe query: variables "
                f"{sorted(v.name for v in unsafe)} do not occur in a positive atom"
            )

    # ------------------------------------------------------------------ helpers
    def variables(self) -> FrozenSet[Variable]:
        """All variables of the query."""

        result: Set[Variable] = set(self.head_variables)
        for atom in self.positive_atoms + self.negative_atoms:
            result |= atom.variables()
        for comparison in self.comparisons:
            result |= comparison.variables()
        return frozenset(result)

    def predicates(self) -> FrozenSet[str]:
        """Database predicates used by the query."""

        return frozenset(a.predicate for a in self.positive_atoms + self.negative_atoms)

    # ------------------------------------------------------------------ evaluation
    def answers(
        self,
        instance: DatabaseInstance,
        null_is_unknown: bool = False,
        naive: bool = False,
        compiled: Optional[bool] = None,
    ) -> AnswerSet:
        """Join-based evaluation of the query over *instance*.

        The default executes the query's **compiled plan**
        (:func:`repro.compile.kernel.compiled_query`): the atom schedule,
        the variable→slot layout and the specialised per-atom matchers
        are fixed once per process, and each call runs the plan over the
        instance's hash indexes with no per-row dictionary copies.  Two
        interpreted paths remain for cross-validation: ``naive=True``
        keeps the original smallest-relation-first nested-loop join (the
        reference interpreter), and ``compiled=False`` keeps the
        index-backed interpreter whose schedule is memoised per query
        (see :meth:`_indexed_bindings`).  All three produce identical
        answer sets.
        """

        if compiled is None:
            compiled = not naive
        if compiled and not naive:
            from repro.compile.kernel import compiled_query

            return compiled_query(self).answers(instance, null_is_unknown)

        bindings: List[Dict[Variable, Constant]] = [{}]
        if naive:
            # Order positive atoms by the number of tuples (cheap greedy join order).
            ordered = sorted(
                self.positive_atoms, key=lambda atom: len(instance.tuples(atom.predicate))
            )
            for atom in ordered:
                rows = instance.tuples(atom.predicate)
                new_bindings: List[Dict[Variable, Constant]] = []
                for binding in bindings:
                    for row in rows:
                        extended = _match(atom, row, binding)
                        if extended is not None:
                            new_bindings.append(extended)
                bindings = new_bindings
                if not bindings:
                    return frozenset()
        else:
            bindings = self._indexed_bindings(instance)
            if not bindings:
                return frozenset()

        results: Set[Tuple[Constant, ...]] = set()
        for binding in bindings:
            if not _comparisons_hold(self.comparisons, binding, null_is_unknown):
                continue
            if any(_negated_atom_holds(instance, atom, binding) for atom in self.negative_atoms):
                continue
            results.add(tuple(binding[v] for v in self.head_variables))
        return frozenset(results)

    def _indexed_bindings(
        self, instance: DatabaseInstance
    ) -> List[Dict[Variable, Constant]]:
        """Index-backed interpreted join of the positive atoms.

        The atom schedule is **not** re-derived per call any more: it is
        the compile-time most-statically-bound-first order of the
        query's compiled plan, memoised per (query, binding pattern) by
        :func:`repro.compile.kernel.compiled_query` — so even the
        interpreted reference path stops re-sorting atoms (the old
        per-step ``bound_score`` scan) on every invocation.  Each
        binding probes the per-position hash indexes for its candidate
        rows instead of scanning the relation.
        """

        from repro.compile.kernel import compiled_query

        bindings: List[Dict[Variable, Constant]] = [{}]
        for index in compiled_query(self).order:
            atom = self.positive_atoms[index]
            new_bindings: List[Dict[Variable, Constant]] = []
            for binding in bindings:
                bound = atom.bound_positions(binding)
                for row in instance.tuples_matching(atom.predicate, bound):
                    extended = _match(atom, row, binding)
                    if extended is not None:
                        new_bindings.append(extended)
            bindings = new_bindings
            if not bindings:
                return []
        return bindings

    def __repr__(self) -> str:
        head = f"{self.name}({', '.join(v.name for v in self.head_variables)})"
        parts = [repr(a) for a in self.positive_atoms]
        parts += [f"not {a!r}" for a in self.negative_atoms]
        parts += [repr(c) for c in self.comparisons]
        return f"{head} <- {', '.join(parts)}"


@dataclass(frozen=True)
class FirstOrderQuery(Query):
    """An arbitrary first-order query given by a formula and a head-variable list."""

    head_variables: Tuple[Variable, ...]
    formula: Formula
    name: str = "ans"

    def answers(self, instance: DatabaseInstance, null_is_unknown: bool = False) -> AnswerSet:
        """Evaluate via the generic active-domain evaluator."""

        return query_answers(
            instance,
            self.head_variables,
            self.formula,
            null_is_unknown=null_is_unknown,
        )

    def __repr__(self) -> str:
        head = f"{self.name}({', '.join(v.name for v in self.head_variables)})"
        return f"{head} <- {self.formula!r}"


# ---------------------------------------------------------------------- helpers
#: Extend a binding so an atom matches a row — the one matching routine
#: shared with constraint checking (see :mod:`repro.compile.matchers`).
_match = extend_match


def _comparisons_hold(
    comparisons: Sequence[Comparison],
    binding: Mapping[Variable, Constant],
    null_is_unknown: bool,
) -> bool:
    for comparison in comparisons:
        try:
            if not comparison.evaluate(binding, null_is_unknown=null_is_unknown):
                return False
        except BuiltinEvaluationError:
            ground = comparison.substitute(binding)
            if is_null(ground.left) or is_null(ground.right):
                return False
            raise
    return True


def _negated_atom_holds(
    instance: DatabaseInstance, atom: Atom, binding: Mapping[Variable, Constant]
) -> bool:
    values: List[Constant] = []
    for term in atom.terms:
        if is_variable(term):
            values.append(binding[term])
        else:
            values.append(term)
    return instance.contains_tuple(atom.predicate, values)
