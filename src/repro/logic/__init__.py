"""First-order logic substrate: formulas, evaluation and queries.

This package supplies what the paper takes for granted: a first-order
language ``L(Σ)`` over the database schema, classical (active-domain)
satisfaction of sentences in finite instances — used to check the
rewritten constraints ``ψ_N`` over the projected instances ``D^A`` — and
safe queries whose answers are computed per repair for consistent query
answering (Definition 8).
"""

from repro.logic.formula import (
    And,
    AtomFormula,
    ComparisonFormula,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    IsNullFormula,
    Not,
    Or,
    TrueFormula,
)
from repro.logic.evaluation import EvaluationError, evaluate, holds, query_answers
from repro.logic.queries import ConjunctiveQuery, FirstOrderQuery, Query

__all__ = [
    "Formula",
    "AtomFormula",
    "ComparisonFormula",
    "IsNullFormula",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "ForAll",
    "TrueFormula",
    "FalseFormula",
    "EvaluationError",
    "evaluate",
    "holds",
    "query_answers",
    "Query",
    "ConjunctiveQuery",
    "FirstOrderQuery",
]
