"""First-order formula abstract syntax tree.

The constructors cover exactly what the reproduction needs: database
atoms, built-in comparisons, the ``IsNull`` predicate, the propositional
constants, the Boolean connectives and the two quantifiers.  Formulas are
immutable and hashable so they can appear in sets and memoisation caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Sequence, Set, Tuple, Union

from repro.relational.domain import Constant
from repro.constraints.atoms import Atom, Comparison, IsNullAtom
from repro.constraints.terms import Variable


class Formula:
    """Base class of all formula nodes."""

    def free_variables(self) -> FrozenSet[Variable]:
        """The free variables of the formula."""

        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The propositional constant ``true``."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The propositional constant ``false`` (always false in a database)."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class AtomFormula(Formula):
    """A database atom used as a formula."""

    atom: Atom

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class ComparisonFormula(Formula):
    """A built-in comparison used as a formula."""

    comparison: Comparison

    def free_variables(self) -> FrozenSet[Variable]:
        return self.comparison.variables()

    def __repr__(self) -> str:
        return repr(self.comparison)


@dataclass(frozen=True)
class IsNullFormula(Formula):
    """``IsNull(t)`` used as a formula."""

    atom: IsNullAtom

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables()

    def __repr__(self) -> str:
        return f"¬({self.operand!r})"


class _NaryFormula(Formula):
    """Shared behaviour of conjunction and disjunction."""

    symbol = "?"

    def __init__(self, operands: Sequence[Formula]):
        self._operands: Tuple[Formula, ...] = tuple(operands)

    @property
    def operands(self) -> Tuple[Formula, ...]:
        """The immediate sub-formulas."""

        return self._operands

    def free_variables(self) -> FrozenSet[Variable]:
        result: Set[Variable] = set()
        for operand in self._operands:
            result |= operand.free_variables()
        return frozenset(result)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._operands == other._operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._operands))

    def __repr__(self) -> str:
        if not self._operands:
            return "true" if isinstance(self, And) else "false"
        return "(" + f" {self.symbol} ".join(repr(op) for op in self._operands) + ")"


class And(_NaryFormula):
    """Conjunction; the empty conjunction is ``true``."""

    symbol = "∧"


class Or(_NaryFormula):
    """Disjunction; the empty disjunction is ``false``."""

    symbol = "∨"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``antecedent → consequent``."""

    antecedent: Formula
    consequent: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __repr__(self) -> str:
        return f"({self.antecedent!r} → {self.consequent!r})"


class _Quantified(Formula):
    """Shared behaviour of the quantifiers."""

    symbol = "?"

    def __init__(self, variables: Sequence[Variable], body: Formula):
        self._variables: Tuple[Variable, ...] = tuple(variables)
        self._body = body

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The quantified variables."""

        return self._variables

    @property
    def body(self) -> Formula:
        """The formula in the scope of the quantifier."""

        return self._body

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset(self._body.free_variables() - set(self._variables))

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self._variables == other._variables  # type: ignore[attr-defined]
            and self._body == other._body  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._variables, self._body))

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self._variables)
        return f"{self.symbol}{names} ({self._body!r})"


class Exists(_Quantified):
    """Existential quantification."""

    symbol = "∃"


class ForAll(_Quantified):
    """Universal quantification."""

    symbol = "∀"


def conjunction(operands: Sequence[Formula]) -> Formula:
    """Conjunction that simplifies the 0- and 1-operand cases."""

    flattened = [op for op in operands if not isinstance(op, TrueFormula)]
    if any(isinstance(op, FalseFormula) for op in flattened):
        return FalseFormula()
    if not flattened:
        return TrueFormula()
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def disjunction(operands: Sequence[Formula]) -> Formula:
    """Disjunction that simplifies the 0- and 1-operand cases."""

    flattened = [op for op in operands if not isinstance(op, FalseFormula)]
    if any(isinstance(op, TrueFormula) for op in flattened):
        return TrueFormula()
    if not flattened:
        return FalseFormula()
    if len(flattened) == 1:
        return flattened[0]
    return Or(tuple(flattened))
