"""Syntax of disjunctive logic programs.

A rule has the shape::

    h_1 ∨ … ∨ h_k ← p_1, …, p_m, not n_1, …, not n_j, c_1, …, c_l

where the ``h``, ``p`` and ``n`` are (possibly non-ground) database atoms
and the ``c`` are built-in comparisons.  An empty head denotes a program
denial (integrity constraint of the program); an empty body with a single
ground head atom is a fact.  Rules must be *safe*: every variable occurring
in the head, in a negative literal or in a comparison must also occur in a
positive body atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.constraints.atoms import Atom, Comparison
from repro.constraints.terms import Variable


class SafetyError(ValueError):
    """Raised for unsafe rules."""


@dataclass(frozen=True)
class Rule:
    """A (possibly non-ground) disjunctive rule."""

    head: Tuple[Atom, ...] = ()
    positive: Tuple[Atom, ...] = ()
    negative: Tuple[Atom, ...] = ()
    comparisons: Tuple[Comparison, ...] = ()

    def __init__(
        self,
        head: Sequence[Atom] = (),
        positive: Sequence[Atom] = (),
        negative: Sequence[Atom] = (),
        comparisons: Sequence[Comparison] = (),
    ):
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "positive", tuple(positive))
        object.__setattr__(self, "negative", tuple(negative))
        object.__setattr__(self, "comparisons", tuple(comparisons))
        self._check_safety()

    # ------------------------------------------------------------------ checks
    def _check_safety(self) -> None:
        positive_vars: Set[Variable] = set()
        for atom in self.positive:
            positive_vars |= atom.variables()
        unsafe: Set[Variable] = set()
        for atom in self.head + self.negative:
            unsafe |= atom.variables() - positive_vars
        for comparison in self.comparisons:
            unsafe |= comparison.variables() - positive_vars
        if unsafe:
            raise SafetyError(
                f"unsafe rule {self!r}: variables "
                f"{sorted(v.name for v in unsafe)} do not occur in a positive body atom"
            )

    # ------------------------------------------------------------------ queries
    @property
    def is_fact(self) -> bool:
        """A ground single-headed rule with an empty body."""

        return (
            len(self.head) == 1
            and not self.positive
            and not self.negative
            and not self.comparisons
            and self.head[0].is_ground()
        )

    @property
    def is_denial(self) -> bool:
        """A rule with an empty head (program integrity constraint)."""

        return not self.head

    @property
    def is_normal(self) -> bool:
        """At most one head atom (non-disjunctive)."""

        return len(self.head) <= 1

    @property
    def is_disjunctive(self) -> bool:
        """Two or more head atoms."""

        return len(self.head) >= 2

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the rule."""

        result: Set[Variable] = set()
        for atom in self.head + self.positive + self.negative:
            result |= atom.variables()
        for comparison in self.comparisons:
            result |= comparison.variables()
        return frozenset(result)

    def predicates(self) -> FrozenSet[str]:
        """All predicate names used by the rule."""

        return frozenset(
            atom.predicate for atom in self.head + self.positive + self.negative
        )

    def __repr__(self) -> str:
        head = " | ".join(repr(a) for a in self.head) if self.head else ""
        body_parts = [repr(a) for a in self.positive]
        body_parts += [f"not {a!r}" for a in self.negative]
        body_parts += [repr(c) for c in self.comparisons]
        body = ", ".join(body_parts)
        if not body:
            return f"{head}."
        if not head:
            return f":- {body}."
        return f"{head} :- {body}."


class Program:
    """A disjunctive logic program: facts plus rules."""

    def __init__(self, rules: Iterable[Rule] = (), facts: Iterable[Atom] = ()):  # noqa: D401
        self._rules: List[Rule] = []
        self._facts: List[Atom] = []
        for fact in facts:
            self.add_fact(fact)
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------ build
    def add_rule(self, rule: Rule) -> None:
        """Append a rule (facts given as rules are stored as facts)."""

        if rule.is_fact:
            self.add_fact(rule.head[0])
        else:
            self._rules.append(rule)

    def add_fact(self, atom: Atom) -> None:
        """Append a ground fact."""

        if not atom.is_ground():
            raise SafetyError(f"facts must be ground, got {atom!r}")
        self._facts.append(atom)

    def extend(self, other: "Program") -> None:
        """Append the facts and rules of another program."""

        for fact in other.facts:
            self.add_fact(fact)
        for rule in other.rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------ access
    @property
    def rules(self) -> List[Rule]:
        """The non-fact rules."""

        return list(self._rules)

    @property
    def facts(self) -> List[Atom]:
        """The ground facts."""

        return list(self._facts)

    def predicates(self) -> FrozenSet[str]:
        """All predicate names in the program."""

        result: Set[str] = set(atom.predicate for atom in self._facts)
        for rule in self._rules:
            result |= rule.predicates()
        return frozenset(result)

    @property
    def is_normal(self) -> bool:
        """True iff no rule is disjunctive."""

        return all(rule.is_normal for rule in self._rules)

    def disjunctive_rules(self) -> List[Rule]:
        """The rules with at least two head atoms."""

        return [rule for rule in self._rules if rule.is_disjunctive]

    def __len__(self) -> int:
        return len(self._rules) + len(self._facts)

    def __iter__(self) -> Iterator[Rule]:
        for fact in self._facts:
            yield Rule(head=(fact,))
        yield from self._rules

    def __repr__(self) -> str:
        lines = [f"{atom!r}." for atom in self._facts]
        lines += [repr(rule) for rule in self._rules]
        return "\n".join(lines)
