"""Stable models of ground disjunctive programs.

The solver is a straightforward but complete branch-and-propagate search:

1. rules are treated as clauses (``body satisfied ⇒ some head atom true``)
   over which unit propagation runs in both directions;
2. an *unsupportedness* propagation sets an atom to false as soon as every
   rule with that atom in its head is already known not to need it (its
   body is falsified, or another of its head atoms is already true) — a
   sound necessary condition for membership in a stable model that prunes
   the vast majority of the classical models;
3. every total assignment that survives is checked for stability with the
   Gelfond–Lifschitz reduct: the candidate must be a model of its reduct
   and no proper subset may be one.  Normal programs use the cheaper
   least-model fixpoint check.

The search enumerates *all* stable models (the repair programs need the
full set to read off every repair, and cautious reasoning needs it for
consistent query answering).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.constraints.atoms import Atom
from repro.asp.grounding import GroundProgram, GroundRule, ground_program
from repro.asp.syntax import Program


class SolverBudgetExceeded(RuntimeError):
    """Raised when the solver exceeds its node budget."""


# --------------------------------------------------------------------------- reduct
def gelfond_lifschitz_reduct(
    rules: Sequence[GroundRule], model: FrozenSet[Atom]
) -> List[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]]:
    """The GL reduct ``Π^M``: drop rules with a negative literal in ``M``,
    and strip the remaining negative literals.  Returns (head, positive-body) pairs."""

    reduct: List[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]] = []
    for rule in rules:
        if any(atom in model for atom in rule.negative):
            continue
        reduct.append((rule.head, rule.positive))
    return reduct


def _is_model_of_reduct(
    reduct: Sequence[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]],
    facts: FrozenSet[Atom],
    candidate: FrozenSet[Atom],
) -> bool:
    if not facts <= candidate:
        return False
    for head, positive in reduct:
        if all(atom in candidate for atom in positive) and not any(
            atom in candidate for atom in head
        ):
            return False
    return True


def least_model_of_reduct(
    reduct: Sequence[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]],
    facts: FrozenSet[Atom],
) -> Optional[FrozenSet[Atom]]:
    """Least model of a *normal* positive reduct (None if a denial fires).

    Only valid when every rule of the reduct has at most one head atom.
    """

    model: Set[Atom] = set(facts)
    changed = True
    while changed:
        changed = False
        for head, positive in reduct:
            if all(atom in model for atom in positive):
                if not head:
                    return None  # violated denial
                if head[0] not in model:
                    model.add(head[0])
                    changed = True
    # Denials must be re-checked once the fixpoint is reached.
    for head, positive in reduct:
        if not head and all(atom in model for atom in positive):
            return None
    return frozenset(model)


def _has_smaller_model(
    reduct: Sequence[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]],
    facts: FrozenSet[Atom],
    model: FrozenSet[Atom],
) -> bool:
    """Is there a model of the reduct strictly contained in *model*?

    Atoms outside *model* are fixed to false (a smaller model can only use
    atoms of *model*); rules whose positive body mentions such an atom are
    vacuously satisfied and are dropped up-front.
    """

    atoms = sorted(model, key=repr)
    relevant: List[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]] = []
    for head, positive in reduct:
        if any(atom not in model for atom in positive):
            continue
        head_in_model = tuple(atom for atom in head if atom in model)
        relevant.append((head_in_model, positive))

    assignment: Dict[Atom, Optional[bool]] = {atom: None for atom in atoms}
    for fact in facts:
        if fact in assignment:
            assignment[fact] = True

    def propagate() -> bool:
        changed = True
        while changed:
            changed = False
            for head, positive in relevant:
                if any(assignment[a] is False for a in positive):
                    continue
                body_true = all(assignment[a] is True for a in positive)
                if any(assignment[a] is True for a in head):
                    continue
                unassigned_heads = [a for a in head if assignment[a] is None]
                if body_true:
                    if not unassigned_heads:
                        return False
                    if len(unassigned_heads) == 1:
                        assignment[unassigned_heads[0]] = True
                        changed = True
                        continue
                # head entirely false: keep the body falsifiable
                if not unassigned_heads:
                    unassigned_body = [a for a in positive if assignment[a] is None]
                    if not unassigned_body:
                        return False
                    if len(unassigned_body) == 1:
                        assignment[unassigned_body[0]] = False
                        changed = True
        return True

    def search() -> bool:
        snapshot = dict(assignment)
        if not propagate():
            assignment.update(snapshot)
            return False
        unassigned = [atom for atom in atoms if assignment[atom] is None]
        if not unassigned:
            true_set = frozenset(atom for atom in atoms if assignment[atom])
            result = true_set != model and _is_model_of_reduct(reduct, facts, true_set)
            assignment.update(snapshot)
            return result
        atom = unassigned[0]
        for value in (False, True):
            assignment[atom] = value
            if search():
                assignment.update(snapshot)
                return True
            # restore everything decided below this point before retrying
            for key in atoms:
                assignment[key] = snapshot[key]
            assignment[atom] = value
        assignment.update(snapshot)
        return False

    return search()


def is_stable_model(
    ground: GroundProgram, candidate: FrozenSet[Atom]
) -> bool:
    """Check that *candidate* is a stable model of the ground program."""

    # Facts must hold, and the candidate must be a classical model.
    if not ground.facts <= candidate:
        return False
    for rule in ground.rules:
        body_true = all(atom in candidate for atom in rule.positive) and not any(
            atom in candidate for atom in rule.negative
        )
        if body_true and rule.head and not any(atom in candidate for atom in rule.head):
            return False
        if body_true and not rule.head:
            return False

    reduct = gelfond_lifschitz_reduct(ground.rules, candidate)
    if all(len(head) <= 1 for head, _ in reduct):
        least = least_model_of_reduct(reduct, ground.facts)
        return least is not None and least == candidate
    if not _is_model_of_reduct(reduct, ground.facts, candidate):
        return False
    return not _has_smaller_model(reduct, ground.facts, candidate)


# --------------------------------------------------------------------------- solver
class _Solver:
    """Enumerate the stable models of a ground program."""

    def __init__(self, ground: GroundProgram, max_nodes: Optional[int] = None):
        self.ground = ground
        self.atoms: List[Atom] = sorted(ground.atoms(), key=repr)
        self.index: Dict[Atom, int] = {atom: i for i, atom in enumerate(self.atoms)}
        self.facts: Set[int] = {self.index[a] for a in ground.facts}
        self.rules: List[Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]] = [
            (
                tuple(self.index[a] for a in rule.head),
                tuple(self.index[a] for a in rule.positive),
                tuple(self.index[a] for a in rule.negative),
            )
            for rule in ground.rules
        ]
        self.head_rules: Dict[int, List[int]] = {}
        for rule_index, (head, _, _) in enumerate(self.rules):
            for atom_index in head:
                self.head_rules.setdefault(atom_index, []).append(rule_index)
        self.max_nodes = max_nodes
        self.nodes = 0
        self.models: List[FrozenSet[Atom]] = []

    # .................................................................. propagation
    def _propagate(self, assign: List[Optional[bool]]) -> bool:
        changed = True
        while changed:
            changed = False
            for head, positive, negative in self.rules:
                body_false = any(assign[p] is False for p in positive) or any(
                    assign[n] is True for n in negative
                )
                if body_false:
                    continue
                head_true = any(assign[h] is True for h in head)
                unassigned_heads = [h for h in head if assign[h] is None]
                body_true = all(assign[p] is True for p in positive) and all(
                    assign[n] is False for n in negative
                )
                if body_true and not head_true:
                    if not unassigned_heads:
                        return False
                    if len(unassigned_heads) == 1:
                        assign[unassigned_heads[0]] = True
                        changed = True
                        continue
                if not head_true and not unassigned_heads:
                    # every head atom is false: the body must end up falsified
                    unassigned_pos = [p for p in positive if assign[p] is None]
                    unassigned_neg = [n for n in negative if assign[n] is None]
                    if not unassigned_pos and not unassigned_neg:
                        if body_true:
                            return False
                        continue
                    if len(unassigned_pos) + len(unassigned_neg) == 1:
                        if unassigned_pos:
                            assign[unassigned_pos[0]] = False
                        else:
                            assign[unassigned_neg[0]] = True
                        changed = True
            # unsupportedness: an atom with no rule that could still need it is false
            for atom_index in range(len(self.atoms)):
                if assign[atom_index] is not None or atom_index in self.facts:
                    continue
                needed = False
                for rule_index in self.head_rules.get(atom_index, []):
                    head, positive, negative = self.rules[rule_index]
                    body_false = any(assign[p] is False for p in positive) or any(
                        assign[n] is True for n in negative
                    )
                    if body_false:
                        continue
                    other_head_true = any(
                        assign[h] is True for h in head if h != atom_index
                    )
                    if other_head_true:
                        continue
                    needed = True
                    break
                if not needed:
                    assign[atom_index] = False
                    changed = True
        return True

    # .................................................................. search
    def solve(self, max_models: Optional[int] = None) -> List[FrozenSet[Atom]]:
        assign: List[Optional[bool]] = [None] * len(self.atoms)
        for fact_index in self.facts:
            assign[fact_index] = True
        self._search(assign, max_models)
        return self.models

    def _search(self, assign: List[Optional[bool]], max_models: Optional[int]) -> None:
        if max_models is not None and len(self.models) >= max_models:
            return
        self.nodes += 1
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            raise SolverBudgetExceeded(
                f"stable-model search exceeded {self.max_nodes} nodes"
            )
        working = list(assign)
        if not self._propagate(working):
            return
        try:
            unassigned = working.index(None)
        except ValueError:
            candidate = frozenset(
                self.atoms[i] for i, value in enumerate(working) if value
            )
            if is_stable_model(self.ground, candidate) and candidate not in self.models:
                self.models.append(candidate)
            return
        for value in (False, True):
            if max_models is not None and len(self.models) >= max_models:
                return
            working_copy = list(working)
            working_copy[unassigned] = value
            self._search(working_copy, max_models)


# --------------------------------------------------------------------------- API
ProgramLike = Union[Program, GroundProgram]


def _ensure_ground(program: ProgramLike) -> GroundProgram:
    if isinstance(program, GroundProgram):
        return program
    return ground_program(program)


def stable_models(
    program: ProgramLike,
    max_models: Optional[int] = None,
    max_nodes: Optional[int] = 2_000_000,
) -> List[FrozenSet[Atom]]:
    """All stable models of *program* (ground or non-ground)."""

    ground = _ensure_ground(program)
    solver = _Solver(ground, max_nodes=max_nodes)
    models = solver.solve(max_models=max_models)
    return sorted(models, key=lambda model: sorted(repr(a) for a in model))


def cautious_consequences(
    program: ProgramLike, max_models: Optional[int] = None
) -> FrozenSet[Atom]:
    """Atoms true in every stable model (empty frozenset if there is none)."""

    models = stable_models(program, max_models=max_models)
    if not models:
        return frozenset()
    result = set(models[0])
    for model in models[1:]:
        result &= model
    return frozenset(result)


def brave_consequences(
    program: ProgramLike, max_models: Optional[int] = None
) -> FrozenSet[Atom]:
    """Atoms true in at least one stable model."""

    models = stable_models(program, max_models=max_models)
    result: Set[Atom] = set()
    for model in models:
        result |= model
    return frozenset(result)
