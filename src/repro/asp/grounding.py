"""Intelligent grounding of disjunctive programs.

A naive grounding over the full Herbrand base explodes quickly; instead we
compute an over-approximation of the atoms that can possibly become true
(ignoring negation and treating every disjunct of a head as derivable) and
instantiate rules only with positive bodies drawn from that set.  Negative
literals over atoms that can never be true are simply removed from the
ground rule (they are trivially satisfied), which keeps the ground program
small without changing its stable models.

Rule bodies join through the same compiled kernel as constraints and
queries: each rule's positive body is lowered once
(:func:`repro.compile.kernel.compiled_body`) and executed against a
:class:`repro.compile.kernel.GroundAtomRelations` view of the current
possible-atom set — slot-based matching instead of one dictionary copy
per candidate atom.  ``compiled=False`` on :func:`possible_atoms` /
:func:`ground_program` keeps the original per-atom interpreted matching
as the cross-validation reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.domain import Constant
from repro.constraints.atoms import Atom, BuiltinEvaluationError, Comparison
from repro.constraints.terms import Variable, is_variable
from repro.asp.syntax import Program, Rule


Assignment = Dict[Variable, Constant]


@dataclass(frozen=True)
class GroundRule:
    """A ground rule (all atoms variable-free, comparisons already resolved)."""

    head: Tuple[Atom, ...]
    positive: Tuple[Atom, ...]
    negative: Tuple[Atom, ...]

    @property
    def is_denial(self) -> bool:
        """True iff the head is empty."""

        return not self.head

    def __repr__(self) -> str:
        head = " | ".join(repr(a) for a in self.head) if self.head else ""
        body = ", ".join(
            [repr(a) for a in self.positive] + [f"not {a!r}" for a in self.negative]
        )
        if not body:
            return f"{head}."
        if not head:
            return f":- {body}."
        return f"{head} :- {body}."


@dataclass
class GroundProgram:
    """The result of grounding: facts, ground rules, and the possible atoms."""

    facts: FrozenSet[Atom]
    rules: Tuple[GroundRule, ...]
    possible_atoms: FrozenSet[Atom]

    def atoms(self) -> FrozenSet[Atom]:
        """Every atom mentioned anywhere in the ground program."""

        mentioned: Set[Atom] = set(self.facts) | set(self.possible_atoms)
        for rule in self.rules:
            mentioned |= set(rule.head) | set(rule.positive) | set(rule.negative)
        return frozenset(mentioned)


def _atoms_by_predicate(atoms: Iterable[Atom]) -> Dict[Tuple[str, int], Set[Atom]]:
    grouped: Dict[Tuple[str, int], Set[Atom]] = {}
    for atom in atoms:
        grouped.setdefault((atom.predicate, atom.arity), set()).add(atom)
    return grouped


def _match_atom(atom: Atom, ground: Atom, assignment: Assignment) -> Optional[Assignment]:
    if atom.predicate != ground.predicate or atom.arity != ground.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, ground.terms):
        if is_variable(term):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


class _Unbound:
    """Sentinel distinguishing 'unbound' from a variable bound to None."""


_UNBOUND = _Unbound()


def _comparisons_hold(comparisons: Sequence[Comparison], assignment: Assignment) -> bool:
    for comparison in comparisons:
        try:
            if not comparison.evaluate(assignment):
                return False
        except BuiltinEvaluationError:
            return False
    return True


def _body_instantiations_interpreted(
    rule: Rule, available: Mapping[Tuple[str, int], Set[Atom]]
) -> Iterator[Assignment]:
    """Reference path: per-atom interpreted matching with dict copies."""

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(rule.positive):
            if _comparisons_hold(rule.comparisons, assignment):
                yield dict(assignment)
            return
        atom = rule.positive[index]
        candidates = available.get((atom.predicate, atom.arity), set())
        for ground in candidates:
            extended = _match_atom(atom, ground, assignment)
            if extended is not None:
                yield from extend(index + 1, extended)

    yield from extend(0, {})


def _body_instantiations(
    rule: Rule,
    available: Mapping[Tuple[str, int], Set[Atom]],
    relations: Optional[object] = None,
    compiled: bool = True,
) -> Iterator[Assignment]:
    """All assignments matching the positive body against *available* atoms.

    The default executes the rule body's compiled join plan against the
    (caller-provided, reused across rules) *relations* view of the
    possible-atom sets; ``compiled=False`` keeps the interpreted
    reference.  Both check the rule's built-in comparisons here, with
    the grounder's semantics (unevaluable ⇒ the instantiation is
    dropped).
    """

    if not compiled:
        yield from _body_instantiations_interpreted(rule, available)
        return
    from repro.compile.kernel import GroundAtomRelations, compiled_body

    if relations is None:
        relations = GroundAtomRelations(available)
    body = compiled_body(tuple(rule.positive))
    for assignment in body.iter_assignments(relations):
        if _comparisons_hold(rule.comparisons, assignment):
            yield assignment


def possible_atoms(program: Program, compiled: bool = True) -> FrozenSet[Atom]:
    """Fixpoint over-approximation of the atoms derivable by the program."""

    from repro.compile.kernel import GroundAtomRelations

    possible: Set[Atom] = set(program.facts)
    changed = True
    while changed:
        changed = False
        grouped = _atoms_by_predicate(possible)
        relations = GroundAtomRelations(grouped) if compiled else None
        for rule in program.rules:
            if not rule.head:
                continue
            for assignment in _body_instantiations(
                rule, grouped, relations=relations, compiled=compiled
            ):
                for head_atom in rule.head:
                    ground_head = head_atom.substitute(assignment)
                    if not ground_head.is_ground():
                        raise ValueError(
                            f"rule {rule!r} produced a non-ground head {ground_head!r}"
                        )
                    if ground_head not in possible:
                        possible.add(ground_head)
                        changed = True
    return frozenset(possible)


def ground_program(program: Program, compiled: bool = True) -> GroundProgram:
    """Ground *program* over its possible atoms."""

    from repro.compile.kernel import GroundAtomRelations

    possible = possible_atoms(program, compiled=compiled)
    grouped = _atoms_by_predicate(possible)
    relations = GroundAtomRelations(grouped) if compiled else None
    facts = frozenset(program.facts)

    ground_rules: List[GroundRule] = []
    seen: Set[Tuple[Tuple[Atom, ...], Tuple[Atom, ...], Tuple[Atom, ...]]] = set()
    for rule in program.rules:
        for assignment in _body_instantiations(
            rule, grouped, relations=relations, compiled=compiled
        ):
            head = tuple(atom.substitute(assignment) for atom in rule.head)
            positive = tuple(atom.substitute(assignment) for atom in rule.positive)
            negative_all = [atom.substitute(assignment) for atom in rule.negative]
            # Negative literals over atoms that can never hold are trivially
            # satisfied; drop them.  (They are ground by safety.)
            negative = tuple(atom for atom in negative_all if atom in possible)
            key = (head, positive, negative)
            if key in seen:
                continue
            seen.add(key)
            ground_rules.append(GroundRule(head=head, positive=positive, negative=negative))
    return GroundProgram(facts=facts, rules=tuple(ground_rules), possible_atoms=possible)
