"""Head-cycle-freeness and the shift transformation ``sh(Π)`` (Section 6).

The dependency graph of a ground disjunctive program has the ground atoms
as vertices and an edge from ``A`` to ``B`` whenever some rule has ``A``
(positively) in its body and ``B`` in its head.  The program is
head-cycle-free (HCF) iff no directed cycle passes through two atoms in
the head of the same rule (Ben-Eliyahu & Dechter 1994).  A HCF program can
be *shifted*: each disjunctive rule

    P_1 ∨ … ∨ P_n ← body

is replaced by the ``n`` normal rules ``P_i ← body, not P_1, …, not P_n``
(all ``P_k`` with ``k ≠ i``), and the shifted program has the same stable
models.  Query evaluation over the shifted program is only coNP instead of
Π^p₂, which is the optimisation Theorem 5 / Corollary 1 exploit for repair
programs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.constraints.atoms import Atom
from repro.asp.grounding import GroundProgram, GroundRule, ground_program
from repro.asp.syntax import Program, Rule


ProgramLike = Union[Program, GroundProgram]


def _ensure_ground(program: ProgramLike) -> GroundProgram:
    if isinstance(program, GroundProgram):
        return program
    return ground_program(program)


def ground_dependency_graph(program: ProgramLike) -> nx.DiGraph:
    """The positive dependency graph of the ground program."""

    ground = _ensure_ground(program)
    graph = nx.DiGraph()
    for atom in ground.atoms():
        graph.add_node(atom)
    for rule in ground.rules:
        for body_atom in rule.positive:
            for head_atom in rule.head:
                graph.add_edge(body_atom, head_atom)
    return graph


def is_head_cycle_free(program: ProgramLike) -> bool:
    """True iff no directed cycle passes through two head atoms of one rule."""

    ground = _ensure_ground(program)
    graph = ground_dependency_graph(ground)
    component_of: Dict[Atom, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for atom in component:
            component_of[atom] = index
    for rule in ground.rules:
        if len(rule.head) < 2:
            continue
        seen_components: Set[int] = set()
        for atom in rule.head:
            component = component_of.get(atom)
            if component is None:
                continue
            if component in seen_components:
                # Two head atoms share a strongly connected component, hence
                # a directed cycle passes through both.
                if _component_has_cycle(graph, atom, component_of):
                    return False
            seen_components.add(component)
    return True


def _component_has_cycle(
    graph: nx.DiGraph, atom: Atom, component_of: Dict[Atom, int]
) -> bool:
    """A strongly connected component with ≥ 2 atoms, or a self-loop, is a cycle."""

    component = component_of[atom]
    members = [a for a, c in component_of.items() if c == component]
    if len(members) >= 2:
        return True
    return graph.has_edge(atom, atom)


def shift_rule(rule: Union[Rule, GroundRule]) -> List[Union[Rule, GroundRule]]:
    """Shift a single rule; normal rules are returned unchanged."""

    if len(rule.head) <= 1:
        return [rule]
    shifted: List[Union[Rule, GroundRule]] = []
    for index, head_atom in enumerate(rule.head):
        others = tuple(atom for k, atom in enumerate(rule.head) if k != index)
        if isinstance(rule, GroundRule):
            shifted.append(
                GroundRule(
                    head=(head_atom,),
                    positive=rule.positive,
                    negative=rule.negative + others,
                )
            )
        else:
            shifted.append(
                Rule(
                    head=(head_atom,),
                    positive=rule.positive,
                    negative=rule.negative + others,
                    comparisons=rule.comparisons,
                )
            )
    return shifted


def shift_program(program: ProgramLike) -> ProgramLike:
    """``sh(Π)``: shift every disjunctive rule of the program.

    The result is of the same kind as the input (a non-ground
    :class:`Program` stays non-ground).  Shifting preserves the stable
    models only for HCF programs; the caller is expected to check
    :func:`is_head_cycle_free` first (the repair-program layer does).
    """

    if isinstance(program, GroundProgram):
        shifted_rules: List[GroundRule] = []
        for rule in program.rules:
            shifted_rules.extend(shift_rule(rule))  # type: ignore[arg-type]
        return GroundProgram(
            facts=program.facts,
            rules=tuple(shifted_rules),
            possible_atoms=program.possible_atoms,
        )
    shifted = Program(facts=program.facts)
    for rule in program.rules:
        for new_rule in shift_rule(rule):
            shifted.add_rule(new_rule)  # type: ignore[arg-type]
    return shifted
