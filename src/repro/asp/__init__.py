"""A small disjunctive logic-programming engine with stable-model semantics.

The paper computes repairs as the stable models of disjunctive logic
programs and suggests running them on DLV.  DLV is not available in this
environment, so this package provides a from-scratch replacement with the
pieces the reproduction needs:

* :mod:`repro.asp.syntax` — rules (disjunctive heads, default negation,
  built-in comparisons) and programs, with safety checking;
* :mod:`repro.asp.grounding` — intelligent grounding over the atoms that
  can possibly become true;
* :mod:`repro.asp.stable` — stable models of ground disjunctive and normal
  programs (Gelfond–Lifschitz reduct + minimality check), cautious and
  brave consequences;
* :mod:`repro.asp.shift` — the program dependency graph, the
  head-cycle-free (HCF) test, and the shift transformation ``sh(Π)`` to an
  equivalent normal program (Section 6 / Ben-Eliyahu & Dechter).
"""

from repro.asp.syntax import Program, Rule, SafetyError
from repro.asp.grounding import GroundProgram, GroundRule, ground_program
from repro.asp.stable import (
    brave_consequences,
    cautious_consequences,
    is_stable_model,
    stable_models,
)
from repro.asp.shift import is_head_cycle_free, shift_program, shift_rule

__all__ = [
    "Rule",
    "Program",
    "SafetyError",
    "GroundRule",
    "GroundProgram",
    "ground_program",
    "stable_models",
    "is_stable_model",
    "cautious_consequences",
    "brave_consequences",
    "is_head_cycle_free",
    "shift_program",
    "shift_rule",
]
