"""Dependency graphs and RIC-acyclicity (Definition 1, Examples 2–3).

``G(IC)`` has one vertex per database predicate mentioned in ``IC`` and a
directed edge ``(P_i, P_j)`` whenever some constraint has ``P_i`` in its
antecedent and ``P_j`` in its consequent.  The *contracted* graph
``G^C(IC)`` collapses each connected component of the subgraph induced by
the universal constraints ``IC_U`` into a single vertex, removes the UIC
edges and keeps only the RIC edges.  ``IC`` is *RIC-acyclic* iff
``G^C(IC)`` has no (directed) cycles — self-loops count as cycles
(Example 3).

The paper's wording of "connected component" ("for every pair there is a
path from A to B or from B to A") does not yield a partition in general;
Example 3's outcome corresponds to *weakly connected* components, which is
what we compute (see DESIGN.md, faithfulness caveats).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import networkx as nx

from repro.constraints.ic import ConstraintSet, IntegrityConstraint, NotNullConstraint


def dependency_graph(constraints: ConstraintSet) -> nx.MultiDiGraph:
    """Build ``G(IC)``: one edge per (constraint, antecedent pred, consequent pred).

    NNCs contribute their predicate as a vertex but no edges (their
    consequent is ``false``).  Each edge carries the attribute
    ``constraint`` referencing the originating constraint object and
    ``kind`` in ``{"uic", "ric", "general"}``.
    """

    graph = nx.MultiDiGraph()
    for constraint in constraints:
        if isinstance(constraint, NotNullConstraint):
            graph.add_node(constraint.predicate)
            continue
        assert isinstance(constraint, IntegrityConstraint)
        for predicate in constraint.predicates():
            graph.add_node(predicate)
        if constraint.is_universal:
            kind = "uic"
        elif constraint.is_referential:
            kind = "ric"
        else:
            kind = "general"
        for source in constraint.body_predicates():
            for target in constraint.head_predicates():
                graph.add_edge(source, target, constraint=constraint, kind=kind)
    return graph


def universal_components(constraints: ConstraintSet) -> List[FrozenSet[str]]:
    """Weakly connected components of ``G(IC_U)`` (the UIC-induced subgraph).

    Predicates not mentioned by any UIC each form their own singleton
    component, so the result is a partition of all predicates in ``IC``.
    """

    uic_graph = nx.MultiDiGraph()
    all_predicates: Set[str] = set()
    for constraint in constraints:
        all_predicates |= set(constraint.predicates())
        if isinstance(constraint, IntegrityConstraint) and constraint.is_universal:
            for source in constraint.body_predicates():
                for target in constraint.head_predicates():
                    uic_graph.add_edge(source, target)
            for predicate in constraint.predicates():
                uic_graph.add_node(predicate)
    components: List[FrozenSet[str]] = [
        frozenset(component) for component in nx.weakly_connected_components(uic_graph)
    ]
    covered: Set[str] = set().union(*components) if components else set()
    for predicate in sorted(all_predicates - covered):
        components.append(frozenset({predicate}))
    return components


def contracted_dependency_graph(constraints: ConstraintSet) -> nx.MultiDiGraph:
    """Build ``G^C(IC)``: contract UIC components, keep only non-UIC edges.

    Vertices are frozensets of predicate names (the contracted components);
    edges are the RIC edges (and edges of general, mixed-existential
    constraints, which behave like RICs for cycle analysis because they can
    introduce new tuples with nulls).
    """

    components = universal_components(constraints)
    component_of: Dict[str, FrozenSet[str]] = {}
    for component in components:
        for predicate in component:
            component_of[predicate] = component

    contracted = nx.MultiDiGraph()
    for component in components:
        contracted.add_node(component)
    for constraint in constraints:
        if isinstance(constraint, NotNullConstraint):
            continue
        assert isinstance(constraint, IntegrityConstraint)
        if constraint.is_universal:
            continue
        for source in constraint.body_predicates():
            for target in constraint.head_predicates():
                contracted.add_edge(
                    component_of[source], component_of[target], constraint=constraint
                )
    return contracted


def is_ric_acyclic(constraints: ConstraintSet) -> bool:
    """True iff ``G^C(IC)`` has no directed cycles (self-loops included)."""

    contracted = contracted_dependency_graph(constraints)
    if any(source == target for source, target, _ in contracted.edges(keys=True)):
        return False
    return nx.is_directed_acyclic_graph(nx.DiGraph(contracted))


def ric_cycles(constraints: ConstraintSet) -> List[List[FrozenSet[str]]]:
    """The simple cycles of ``G^C(IC)`` (empty list iff RIC-acyclic)."""

    contracted = nx.DiGraph(contracted_dependency_graph(constraints))
    self_loops = [[node] for node in contracted.nodes if contracted.has_edge(node, node)]
    cycles = [cycle for cycle in nx.simple_cycles(contracted) if len(cycle) > 1]
    return self_loops + cycles


def topological_component_order(constraints: ConstraintSet) -> List[FrozenSet[str]]:
    """A topological order of the contracted components (RIC-acyclic sets only).

    Raises ``networkx.NetworkXUnfeasible`` when the constraint set is not
    RIC-acyclic.  The order is useful for the "local repair" strategies the
    paper sketches as future work and for staged workload generation.
    """

    contracted = nx.DiGraph(contracted_dependency_graph(constraints))
    return list(nx.topological_sort(contracted))
