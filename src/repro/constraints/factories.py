"""Convenience constructors for the constraint shapes of database practice.

Section 2 of the paper observes that the general form (1) accommodates the
usual constraints: functional dependencies and keys (several UICs with one
equality each), partial inclusion dependencies (RICs), full inclusion
dependencies (UICs), denial and single-row check constraints, and — with
``IsNull`` — primary keys with NOT NULL and foreign keys.  The factories in
this module build those shapes from compact, schema-level descriptions so
that examples and workload generators read like DDL.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.constraints.atoms import Atom, Comparison
from repro.constraints.ic import (
    ConstraintError,
    IntegrityConstraint,
    NotNullConstraint,
    _construction_diagnostic,
)
from repro.constraints.terms import Variable


def _vars(prefix: str, count: int) -> List[Variable]:
    """``count`` fresh variables named ``prefix1 … prefixN``."""

    return [Variable(f"{prefix}{i + 1}") for i in range(count)]


def _malformed(message: str, *, subject: str) -> ConstraintError:
    """A :class:`ConstraintError` carrying the ``E104`` diagnostic."""

    return ConstraintError(
        message, diagnostic=_construction_diagnostic("E104", message, subject=subject)
    )


def universal_constraint(
    body: Sequence[Atom],
    head_atoms: Sequence[Atom] = (),
    head_comparisons: Sequence[Comparison] = (),
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """A universal constraint (form (2)); validates that no existentials appear."""

    constraint = IntegrityConstraint(body, head_atoms, head_comparisons, name=name)
    if not constraint.is_universal:
        raise ConstraintError(
            f"constraint {constraint!r} has existential variables; "
            "use referential_constraint or the generic IntegrityConstraint"
        )
    return constraint


def referential_constraint(
    body_atom: Atom,
    head_atom: Atom,
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """A referential constraint (form (3)) ``P(x̄) → ∃ȳ Q(x̄', ȳ)``."""

    constraint = IntegrityConstraint([body_atom], [head_atom], name=name)
    if not constraint.is_referential:
        raise ConstraintError(
            f"constraint {constraint!r} is not of the referential form (3)"
        )
    return constraint


def denial_constraint(
    body: Sequence[Atom],
    comparisons: Sequence[Comparison] = (),
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """A denial constraint ``∀x̄ (∧ P_i(x̄_i) ∧ conditions → false)``.

    *comparisons* are the conditions under which the combination is
    forbidden; they are moved to the consequent in negated form so that the
    result fits the paper's form (1), where ``ϕ`` is a disjunction of
    built-ins.  For example ``P(x, y), R(y, z)`` with condition ``z = 2``
    becomes ``P(x, y) ∧ R(y, z) → z ≠ 2``.
    """

    negated = tuple(c.negated() for c in comparisons)
    return IntegrityConstraint(body, (), negated, name=name)


def check_constraint(
    atom: Atom,
    comparisons: Sequence[Comparison],
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """A single-row check constraint ``P(x̄) → ϕ`` with ``ϕ`` a disjunction."""

    if not comparisons:
        raise _malformed(
            "a check constraint needs at least one comparison", subject=atom.predicate
        )
    return IntegrityConstraint([atom], (), tuple(comparisons), name=name)


def functional_dependency(
    predicate: str,
    arity: int,
    determinant: Sequence[int],
    dependent: Sequence[int],
    name: Optional[str] = None,
) -> List[IntegrityConstraint]:
    """Functional dependency ``determinant → dependent`` (0-based positions).

    Returns one UIC per dependent position, each with a single equality in
    the consequent, exactly as the paper describes:
    ``P(x̄), P(x̄') with x̄, x̄' agreeing on the determinant → x_j = x'_j``.
    """

    if not determinant:
        raise _malformed(
            "a functional dependency needs a non-empty determinant", subject=predicate
        )
    for pos in list(determinant) + list(dependent):
        if not 0 <= pos < arity:
            raise _malformed(
                f"FD position {pos} out of range for {predicate} of arity {arity}",
                subject=predicate,
            )
    if len(set(determinant)) != len(tuple(determinant)):
        raise _malformed(
            f"FD determinant {list(determinant)} on {predicate} repeats a position",
            subject=predicate,
        )
    if len(set(dependent)) != len(tuple(dependent)):
        raise _malformed(
            f"FD dependent list {list(dependent)} on {predicate} repeats a position",
            subject=predicate,
        )
    vacuous = set(determinant) & set(dependent)
    if vacuous:
        raise _malformed(
            f"FD dependent position(s) {sorted(vacuous)} on {predicate} are part "
            "of the determinant: the dependency is vacuously true",
            subject=predicate,
        )
    constraints: List[IntegrityConstraint] = []
    for index, dep in enumerate(dependent):
        left_terms: List[Variable] = _vars("x", arity)
        right_terms: List[Variable] = _vars("y", arity)
        for pos in determinant:
            right_terms[pos] = left_terms[pos]
        equality = Comparison("=", left_terms[dep], right_terms[dep])
        fd_name = name if name and len(dependent) == 1 else (f"{name}_{index + 1}" if name else None)
        constraints.append(
            IntegrityConstraint(
                [Atom(predicate, left_terms), Atom(predicate, right_terms)],
                (),
                (equality,),
                name=fd_name,
            )
        )
    return constraints


def primary_key(
    predicate: str,
    arity: int,
    key_positions: Sequence[int],
    with_not_null: bool = True,
    name: Optional[str] = None,
) -> List[object]:
    """A primary key: the key functional dependency plus NOT NULL on key columns.

    Commercial DBMSs require primary-key attributes to be non-null; the
    paper models that with NNCs (Example 19).  Returns the FD constraints
    followed by the NNCs.
    """

    if not key_positions:
        raise _malformed(
            f"primary key on {predicate} needs at least one column", subject=predicate
        )
    for pos in key_positions:
        if not 0 <= pos < arity:
            raise _malformed(
                f"key position {pos} out of range for {predicate} of arity {arity}",
                subject=predicate,
            )
    if len(set(key_positions)) != len(tuple(key_positions)):
        raise _malformed(
            f"primary key {list(key_positions)} on {predicate} repeats a position",
            subject=predicate,
        )
    non_key = [i for i in range(arity) if i not in set(key_positions)]
    constraints: List[object] = []
    if non_key:
        constraints.extend(
            functional_dependency(predicate, arity, key_positions, non_key, name=name)
        )
    else:
        # A key over all attributes induces no FD; it only forbids nulls.
        pass
    if with_not_null:
        for pos in key_positions:
            constraints.append(
                NotNullConstraint(predicate, pos, arity=arity, name=(f"{name}_nn{pos + 1}" if name else None))
            )
    return constraints


def foreign_key(
    child: str,
    child_arity: int,
    child_positions: Sequence[int],
    parent: str,
    parent_arity: int,
    parent_positions: Sequence[int],
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """A foreign key ``child[child_positions] ⊆ parent[parent_positions]``.

    Built as a referential constraint of form (3): the referencing columns
    of the child must appear in the referenced columns of the parent, the
    remaining parent columns being existentially quantified.  The key
    constraint on the parent must be declared separately (as the paper does
    in Example 19).
    """

    if len(child_positions) != len(parent_positions):
        raise _malformed(
            f"foreign key {child}→{parent} column lists must have equal length "
            f"({len(child_positions)} vs {len(parent_positions)})",
            subject=child,
        )
    if not child_positions:
        raise _malformed(
            f"foreign key {child}→{parent} needs at least one column", subject=child
        )
    if len(set(parent_positions)) != len(tuple(parent_positions)):
        # Without this check a repeated parent position would silently
        # overwrite the earlier column pairing instead of constraining both.
        raise _malformed(
            f"foreign key {child}→{parent} repeats parent position(s) in "
            f"{list(parent_positions)}: each referenced column may be paired once",
            subject=parent,
        )
    child_terms: List[Variable] = _vars("x", child_arity)
    parent_terms: List[Variable] = _vars("z", parent_arity)
    for c_pos, p_pos in zip(child_positions, parent_positions):
        if not 0 <= c_pos < child_arity:
            raise _malformed(
                f"child position {c_pos} out of range for {child} of arity "
                f"{child_arity}",
                subject=child,
            )
        if not 0 <= p_pos < parent_arity:
            raise _malformed(
                f"parent position {p_pos} out of range for {parent} of arity "
                f"{parent_arity}",
                subject=parent,
            )
        parent_terms[p_pos] = child_terms[c_pos]
    constraint = IntegrityConstraint(
        [Atom(child, child_terms)], [Atom(parent, parent_terms)], name=name
    )
    return constraint


def inclusion_dependency(
    child: str,
    child_arity: int,
    child_positions: Sequence[int],
    parent: str,
    parent_arity: int,
    parent_positions: Sequence[int],
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """Partial inclusion dependency; alias of :func:`foreign_key` (a RIC) unless full.

    If the parent positions cover all parent attributes the result is a
    full inclusion dependency, which is a universal constraint.
    """

    constraint = foreign_key(
        child, child_arity, child_positions, parent, parent_arity, parent_positions, name=name
    )
    return constraint


def full_inclusion_dependency(
    child: str,
    child_arity: int,
    child_positions: Sequence[int],
    parent: str,
    parent_positions: Sequence[int],
    name: Optional[str] = None,
) -> IntegrityConstraint:
    """Full inclusion dependency ``child[positions] ⊆ parent`` (a UIC).

    The parent's arity equals the number of referenced columns, so there
    are no existential variables.
    """

    parent_arity = len(parent_positions)
    child_terms: List[Variable] = _vars("x", child_arity)
    parent_terms: List[Variable] = [Variable("_dummy")] * parent_arity
    for c_pos, p_pos in zip(child_positions, parent_positions):
        parent_terms[p_pos] = child_terms[c_pos]
    if any(v.name == "_dummy" for v in parent_terms):
        raise _malformed(
            "full inclusion dependency must cover every parent attribute; "
            "use inclusion_dependency/foreign_key for partial dependencies",
            subject=parent,
        )
    return IntegrityConstraint(
        [Atom(child, child_terms)], [Atom(parent, parent_terms)], name=name
    )


def not_null(
    predicate: str, position: int, arity: Optional[int] = None, name: Optional[str] = None
) -> NotNullConstraint:
    """A NOT NULL constraint on ``predicate[position]`` (0-based position)."""

    return NotNullConstraint(predicate, position, arity=arity, name=name)
