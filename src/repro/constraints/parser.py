"""A small textual syntax for constraints and queries.

The syntax keeps the paper's look and feel::

    P(x, y), R(y, z, w) -> S(x) | z != 2 | w <= y        (universal, Example 1a)
    P(x, y) -> R(x, y, z)                                  (referential, Example 1b)
    Emp(id, name, salary) -> salary > 100                  (check, Example 6)
    P(x, y), P(x, z) -> y = z                               (key as FD)
    Q(x, y), isnull(y) -> false                             (NOT NULL, Definition 5)
    P(x, y), R(y, z) -> false                               (denial)

Conventions
-----------
* bare lowercase identifiers are **variables**;
* constants are single- or double-quoted strings, numbers, or the keyword
  ``null``; bare identifiers starting with an uppercase letter *inside an
  atom's argument list* are also treated as string constants (so the
  paper's ``Course(x, y, 'W04')`` can be written ``Course(x, y, W04)``);
* existential variables are simply the head variables that do not occur in
  the body — no explicit quantifier is written, matching the paper's
  convention of leaving prefixes implicit;
* ``false`` as the entire head denotes a denial constraint;
* a body atom ``isnull(v)`` (case-insensitive) together with head
  ``false`` produces a :class:`repro.constraints.ic.NotNullConstraint`.

Queries use the same term syntax::

    ans(x) <- Course(x, y, z), not Student(y, n), z != 'W04'
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relational.domain import NULL, Constant
from repro.constraints.atoms import Atom, Comparison, COMPARISON_OPS
from repro.constraints.ic import (
    ConstraintError,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.terms import Term, Variable


class ParseError(ValueError):
    """Raised when the textual constraint/query syntax cannot be parsed.

    May carry a structured :class:`repro.analysis.Diagnostic` (``E103``
    arity-mismatch / ``E104`` malformed-constraint) for errors caught by
    construction-time validation rather than tokenisation.
    """

    def __init__(self, message: str, *, diagnostic: Optional[object] = None):
        super().__init__(message)
        self.diagnostic = diagnostic


def _parse_diagnostic(code: str, message: str, **details: object) -> object:
    """Build a diagnostic lazily (the analysis package imports this module)."""

    from repro.analysis.diagnostics import make_diagnostic

    return make_diagnostic(code, message, **details)


def _check_atom_arities(atoms: Iterable[Atom], text: str) -> None:
    """Reject one predicate used with two arities inside a single statement.

    Caught here it is a one-line :class:`ParseError`; uncaught it would
    surface as a ``KeyError``/index error deep in evaluation.
    """

    arities: Dict[str, int] = {}
    for atom in atoms:
        known = arities.setdefault(atom.predicate, atom.arity)
        if known != atom.arity:
            message = (
                f"predicate {atom.predicate} is used with arities {known} and "
                f"{atom.arity} in {text!r}"
            )
            raise ParseError(
                message,
                diagnostic=_parse_diagnostic("E103", message, subject=atom.predicate),
            )


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<arrow><-|->)
      | (?P<op>!=|>=|<=|=|<|>)
      | (?P<punct>[(),|])
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


def _tokenise(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character at {text[position:position + 10]!r}")
        position = match.end()
        for kind in ("arrow", "op", "punct", "string", "number", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _TokenStream:
    """Tiny cursor over the token list with one-token lookahead."""

    def __init__(self, tokens: Sequence[Tuple[str, str]], text: str):
        self._tokens = list(tokens)
        self._index = 0
        self._text = text

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Tuple[str, str]:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                f"expected {value or kind!r} but found {token[1]!r} in {self._text!r}"
            )
        return token

    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(token: Tuple[str, str]) -> Term:
    kind, value = token
    if kind == "string":
        return value[1:-1]
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "word":
        if value.lower() == "null":
            return NULL
        if value[0].isupper():
            return value  # bare uppercase identifier → string constant
        return Variable(value)
    raise ParseError(f"cannot interpret token {value!r} as a term")


def _parse_atom_or_comparison(stream: _TokenStream) -> Union[Atom, Comparison, str]:
    """Parse one literal: an atom, a comparison, or the keyword ``false``."""

    kind, value = stream.next()
    if kind == "word" and value.lower() == "false" and (
        stream.peek() is None or stream.peek()[1] != "("
    ):
        return "false"
    if kind == "word" and stream.peek() is not None and stream.peek()[1] == "(":
        predicate = value
        stream.expect("punct", "(")
        terms: List[Term] = []
        if stream.peek() is not None and stream.peek()[1] == ")":
            stream.next()  # empty argument list, e.g. a boolean query head ans()
        else:
            while True:
                terms.append(_parse_term(stream.next()))
                punct = stream.next()
                if punct[1] == ")":
                    break
                if punct[1] != ",":
                    raise ParseError(f"expected ',' or ')' but found {punct[1]!r}")
        return Atom(predicate, terms)
    # Otherwise this must be the left operand of a comparison.
    left = _parse_term((kind, value))
    op_token = stream.next()
    if op_token[0] != "op":
        raise ParseError(f"expected a comparison operator after {value!r}")
    right = _parse_term(stream.next())
    return Comparison(op_token[1], left, right)


def _parse_literal_list(stream: _TokenStream, separator: str) -> List[Union[Atom, Comparison, str]]:
    literals = [_parse_atom_or_comparison(stream)]
    while stream.peek() is not None and stream.peek()[1] == separator:
        stream.next()
        literals.append(_parse_atom_or_comparison(stream))
    return literals


def parse_constraint(text: str, name: Optional[str] = None) -> Union[IntegrityConstraint, NotNullConstraint]:
    """Parse a single constraint from *text* (see the module docstring)."""

    tokens = _tokenise(text)
    stream = _TokenStream(tokens, text)
    body_literals = _parse_literal_list(stream, ",")
    stream.expect("arrow", "->")
    head_literals = _parse_literal_list(stream, "|")
    if not stream.exhausted():
        raise ParseError(f"trailing tokens after constraint in {text!r}")

    body_atoms: List[Atom] = []
    isnull_vars: List[Variable] = []
    for literal in body_literals:
        if isinstance(literal, Atom) and literal.predicate.lower() == "isnull":
            if literal.arity != 1 or not isinstance(literal.terms[0], Variable):
                raise ParseError("isnull(...) takes exactly one variable argument")
            isnull_vars.append(literal.terms[0])
        elif isinstance(literal, Atom):
            body_atoms.append(literal)
        else:
            raise ParseError(
                f"comparisons are not allowed in the antecedent of form (1): {literal!r}"
            )

    is_false_head = len(head_literals) == 1 and head_literals[0] == "false"
    head_atoms: List[Atom] = []
    head_comparisons: List[Comparison] = []
    if not is_false_head:
        for literal in head_literals:
            if literal == "false":
                raise ParseError("'false' cannot be combined with other head literals")
            if isinstance(literal, Atom):
                head_atoms.append(literal)
            else:
                head_comparisons.append(literal)

    if isnull_vars:
        if not is_false_head or len(body_atoms) != 1 or len(isnull_vars) != 1:
            raise ParseError(
                "NOT NULL constraints must have the form 'P(x1,...,xn), isnull(xi) -> false'"
            )
        atom = body_atoms[0]
        variable = isnull_vars[0]
        positions = atom.positions_of(variable)
        if not positions:
            raise ParseError(
                f"isnull variable {variable} does not occur in the atom {atom!r}"
            )
        if len(positions) > 1:
            message = (
                f"isnull variable {variable} occurs at positions "
                f"{[p + 1 for p in positions]} of {atom!r}: a NOT NULL "
                "constraint protects exactly one attribute — use distinct "
                "variables and one isnull per protected position"
            )
            raise ParseError(
                message,
                diagnostic=_parse_diagnostic("E104", message, subject=atom.predicate),
            )
        return NotNullConstraint(atom.predicate, positions[0], arity=atom.arity, name=name)

    if not body_atoms:
        raise ParseError("a constraint needs at least one database atom in the antecedent")
    _check_atom_arities(body_atoms + head_atoms, text)
    return IntegrityConstraint(body_atoms, head_atoms, head_comparisons, name=name)


def parse_constraints(texts: Iterable[str]) -> ConstraintSet:
    """Parse several constraints into a :class:`ConstraintSet`.

    Each entry may optionally be prefixed with ``name:`` to name the
    constraint (useful in reports).
    """

    constraints = ConstraintSet()
    for text in texts:
        name: Optional[str] = None
        stripped = text.strip()
        if ":" in stripped.split("(")[0] and "->" in stripped:
            prefix, rest = stripped.split(":", 1)
            if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", prefix.strip()):
                name = prefix.strip()
                stripped = rest.strip()
        constraints.add(parse_constraint(stripped, name=name))
    return constraints


def _render_term(term: Term) -> str:
    """Render one term in the textual syntax (the inverse of :func:`_parse_term`).

    Raises :class:`ParseError` for terms the syntax cannot express
    unambiguously (non-identifier variable names, strings containing a
    quote, booleans).
    """

    from repro.constraints.terms import is_variable
    from repro.relational.domain import is_null

    if is_variable(term):
        name = term.name
        if not re.fullmatch(r"[a-z_][A-Za-z0-9_]*", name) or name.lower() in (
            "null",
            "false",
            "not",
            "isnull",
        ):
            raise ParseError(f"variable name {name!r} is not renderable")
        return name
    if is_null(term):
        return "null"
    if isinstance(term, bool):
        raise ParseError(f"boolean constant {term!r} is not renderable")
    if isinstance(term, (int, float)):
        return repr(term)
    if isinstance(term, str):
        if "'" in term:
            raise ParseError(f"string constant {term!r} contains a quote")
        return f"'{term}'"
    raise ParseError(f"constant {term!r} of type {type(term).__name__} is not renderable")


def _render_atom(atom: Atom) -> str:
    return f"{atom.predicate}({', '.join(_render_term(t) for t in atom.terms)})"


def _render_comparison(comparison: Comparison) -> str:
    return (
        f"{_render_term(comparison.left)} {comparison.op} "
        f"{_render_term(comparison.right)}"
    )


def _name_prefix(name: Optional[str]) -> str:
    if name and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        return f"{name}: "
    return ""


def render_constraint(
    constraint: Union[IntegrityConstraint, NotNullConstraint],
    *,
    named: bool = True,
) -> str:
    """Render *constraint* back into the textual syntax, parse round-trip safe.

    The inverse of :func:`parse_constraint` (modulo whitespace): feeding
    the result to :func:`parse_constraints` reconstructs a structurally
    identical constraint, which is what the explorer's witness
    serialisation relies on.  NOT NULL constraints need a known arity
    (the parser's form mentions every attribute).

    >>> render_constraint(parse_constraint("P(x, y), P(x, z) -> y = z"))
    'P(x, y), P(x, z) -> y = z'
    >>> render_constraint(parse_constraint("Q(x, y), isnull(y) -> false"))
    'Q(x0, x1), isnull(x1) -> false'
    >>> render_constraint(parse_constraint("key: P(x, y) -> R(x, z)"))
    'key: P(x, y) -> R(x, z)'
    """

    prefix = _name_prefix(constraint.name) if named else ""
    if isinstance(constraint, NotNullConstraint):
        if constraint.arity is None:
            raise ParseError(
                f"cannot render {constraint!r}: NOT NULL constraints need a "
                "known arity (construct with not_null(..., arity) or parse)"
            )
        variables = [f"x{i}" for i in range(constraint.arity)]
        atom = f"{constraint.predicate}({', '.join(variables)})"
        return f"{prefix}{atom}, isnull(x{constraint.position}) -> false"
    body = ", ".join(_render_atom(a) for a in constraint.body)
    head_parts = [_render_atom(a) for a in constraint.head_atoms] + [
        _render_comparison(c) for c in constraint.head_comparisons
    ]
    head = " | ".join(head_parts) if head_parts else "false"
    return f"{prefix}{body} -> {head}"


def render_query(query) -> str:
    """Render a :class:`~repro.logic.queries.ConjunctiveQuery` back to text.

    The inverse of :func:`parse_query` (modulo whitespace).

    >>> render_query(parse_query("ans(x) <- P(x, y), not R(y), y > 2"))
    'ans(x) <- P(x, y), not R(y), y > 2'
    >>> render_query(parse_query("ans() <- P(x, y)"))
    'ans() <- P(x, y)'
    """

    head_terms = ", ".join(_render_term(v) for v in query.head_variables)
    name = query.name if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", query.name) else "ans"
    body_parts = [_render_atom(a) for a in query.positive_atoms]
    body_parts += [f"not {_render_atom(a)}" for a in query.negative_atoms]
    body_parts += [_render_comparison(c) for c in query.comparisons]
    return f"{name}({head_terms}) <- {', '.join(body_parts)}"


def parse_query(text: str):
    """Parse a query ``ans(x, y) <- P(x, y), not R(y), y > 2``.

    Returns a :class:`repro.logic.queries.ConjunctiveQuery`.  A boolean
    query is written with an empty head: ``ans() <- P(x, y)``.
    """

    from repro.logic.queries import ConjunctiveQuery  # local import avoids a cycle

    tokens = _tokenise(text)
    stream = _TokenStream(tokens, text)
    head = _parse_atom_or_comparison(stream)
    if not isinstance(head, Atom):
        raise ParseError(f"query head must be an atom, found {head!r}")
    stream.expect("arrow", "<-")

    positive: List[Atom] = []
    negative: List[Atom] = []
    comparisons: List[Comparison] = []
    while True:
        token = stream.peek()
        negated = False
        if token is not None and token == ("word", "not"):
            stream.next()
            negated = True
        literal = _parse_atom_or_comparison(stream)
        if isinstance(literal, Atom):
            (negative if negated else positive).append(literal)
        elif isinstance(literal, Comparison):
            if negated:
                comparisons.append(literal.negated())
            else:
                comparisons.append(literal)
        else:
            raise ParseError("'false' is not allowed in a query body")
        if stream.peek() is not None and stream.peek()[1] == ",":
            stream.next()
            continue
        break
    if not stream.exhausted():
        raise ParseError(f"trailing tokens after query in {text!r}")
    _check_atom_arities(positive + negative, text)

    head_vars = [t for t in head.terms if isinstance(t, Variable)]
    return ConjunctiveQuery(
        head_variables=tuple(head_vars),
        positive_atoms=tuple(positive),
        negative_atoms=tuple(negative),
        comparisons=tuple(comparisons),
        name=head.predicate,
    )
