"""Integrity constraints of the paper's form (1), plus NOT-NULL constraints.

The generic constraint class represents sentences

    ∀x̄ ( P_1(x̄_1) ∧ … ∧ P_m(x̄_m)  →  ∃z̄ ( Q_1(ȳ_1, z̄_1) ∨ … ∨ Q_n(ȳ_n, z̄_n) ∨ ϕ ) )

where the ``P_i`` and ``Q_j`` are database atoms, ``ϕ`` is a disjunction of
built-in comparison atoms over antecedent variables, the ``ȳ_j`` are
universally quantified (they appear in the antecedent) and the ``z̄_j`` are
the existential variables of the consequent.  Universal constraints (UICs,
form (2)) have no existential variables; referential constraints (RICs,
form (3)) have a single antecedent atom, a single consequent atom and no
built-ins.  NOT-NULL constraints (NNCs, Definition 5) are represented by a
dedicated class because they mention ``IsNull`` and are interpreted
classically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.relational.domain import Constant
from repro.relational.schema import DatabaseSchema
from repro.constraints.atoms import Atom, Comparison
from repro.constraints.terms import Variable, is_variable


class ConstraintError(ValueError):
    """Raised for syntactically malformed constraints.

    May carry a structured :class:`repro.analysis.Diagnostic` (codes
    ``E103`` arity-mismatch / ``E104`` malformed-constraint) so callers
    gate on stable codes instead of message text.
    """

    def __init__(self, message: str, *, diagnostic: Optional[object] = None):
        super().__init__(message)
        self.diagnostic = diagnostic


def _construction_diagnostic(code: str, message: str, **details: object) -> object:
    """Build a diagnostic lazily (the analysis package imports this module)."""

    from repro.analysis.diagnostics import make_diagnostic

    return make_diagnostic(code, message, **details)


@dataclass(frozen=True)
class IntegrityConstraint:
    """A constraint of the paper's general form (1)."""

    body: Tuple[Atom, ...]
    head_atoms: Tuple[Atom, ...] = ()
    head_comparisons: Tuple[Comparison, ...] = ()
    name: Optional[str] = None

    def __init__(
        self,
        body: Sequence[Atom],
        head_atoms: Sequence[Atom] = (),
        head_comparisons: Sequence[Comparison] = (),
        name: Optional[str] = None,
    ):
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head_atoms", tuple(head_atoms))
        object.__setattr__(self, "head_comparisons", tuple(head_comparisons))
        object.__setattr__(self, "name", name)
        self._validate()

    # ------------------------------------------------------------------ checks
    def _validate(self) -> None:
        if len(self.body) < 1:
            raise ConstraintError("a constraint needs at least one antecedent atom (m ≥ 1)")
        # One predicate, one arity — inside a single constraint this is
        # always a typo, and catching it here beats a late KeyError /
        # index error deep in satisfaction or the compiled kernel.
        arities: Dict[str, int] = {}
        for atom in self.body + self.head_atoms:
            known = arities.setdefault(atom.predicate, atom.arity)
            if known != atom.arity:
                message = (
                    f"predicate {atom.predicate} is used with arities {known} "
                    f"and {atom.arity} in one constraint"
                )
                raise ConstraintError(
                    message,
                    diagnostic=_construction_diagnostic(
                        "E103", message, subject=atom.predicate
                    ),
                )
        body_vars = self.body_variables()
        for comparison in self.head_comparisons:
            extra = comparison.variables() - body_vars
            if extra:
                raise ConstraintError(
                    f"built-in {comparison!r} uses variables {sorted(v.name for v in extra)} "
                    "that do not appear in the antecedent"
                )
        # Existential variables must not be shared between consequent atoms
        # (z̄_i ∩ z̄_j = ∅ for i ≠ j) per the paper's standardisation.
        seen: Set[Variable] = set()
        for atom in self.head_atoms:
            exist_here = atom.variables() - body_vars
            overlap = exist_here & seen
            if overlap:
                raise ConstraintError(
                    "existential variables may not be shared between consequent atoms: "
                    f"{sorted(v.name for v in overlap)}"
                )
            seen |= exist_here

    # ------------------------------------------------------------------ variables
    def body_variables(self) -> FrozenSet[Variable]:
        """``x̄``: the universally quantified variables (antecedent variables)."""

        result: Set[Variable] = set()
        for atom in self.body:
            result |= atom.variables()
        return frozenset(result)

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the consequent (atoms and built-ins)."""

        result: Set[Variable] = set()
        for atom in self.head_atoms:
            result |= atom.variables()
        for comparison in self.head_comparisons:
            result |= comparison.variables()
        return frozenset(result)

    def existential_variables(self) -> FrozenSet[Variable]:
        """``z̄``: consequent variables that do not occur in the antecedent."""

        return frozenset(self.head_variables() - self.body_variables())

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the constraint."""

        return frozenset(self.body_variables() | self.head_variables())

    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned anywhere in the constraint (``const(IC)``)."""

        result: Set[Constant] = set()
        for atom in self.body + self.head_atoms:
            result |= atom.constants()
        for comparison in self.head_comparisons:
            result |= comparison.constants()
        return frozenset(result)

    # ------------------------------------------------------------------ structure
    def predicates(self) -> FrozenSet[str]:
        """Database predicates mentioned in the constraint."""

        return frozenset(a.predicate for a in self.body + self.head_atoms)

    def body_predicates(self) -> FrozenSet[str]:
        """Predicates of the antecedent."""

        return frozenset(a.predicate for a in self.body)

    def head_predicates(self) -> FrozenSet[str]:
        """Predicates of the consequent."""

        return frozenset(a.predicate for a in self.head_atoms)

    @property
    def is_universal(self) -> bool:
        """True for UICs (form (2)): no existentially quantified variables."""

        return not self.existential_variables()

    @property
    def is_referential(self) -> bool:
        """True for RICs (form (3)).

        One antecedent atom, one consequent atom, no built-ins, and the
        consequent's universal terms are antecedent variables (``x̄' ⊆ x̄``).
        A full inclusion dependency (no existential variables) is *not*
        referential: it is a universal constraint.
        """

        if len(self.body) != 1 or len(self.head_atoms) != 1 or self.head_comparisons:
            return False
        if not self.existential_variables():
            return False
        head = self.head_atoms[0]
        body_vars = self.body_variables()
        for term in head.terms:
            if is_variable(term) and term not in body_vars:
                continue  # existential position
            if is_variable(term) and term in body_vars:
                continue  # referencing position
            # Constants in the consequent of a RIC are unusual but harmless;
            # the paper's form (3) does not include them, so reject.
            return False
        return True

    @property
    def is_denial(self) -> bool:
        """True for denial constraints: an empty consequent (``→ false``)."""

        return not self.head_atoms and not self.head_comparisons

    @property
    def is_check(self) -> bool:
        """True for single-row check constraints: one body atom, built-ins only."""

        return len(self.body) == 1 and not self.head_atoms and bool(self.head_comparisons)

    def referenced_positions(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """For a RIC, the (antecedent, consequent) positions of the shared variables.

        Returns two equally long tuples ``(p_body, p_head)`` such that the
        variable at ``body[0].terms[p_body[k]]`` is the one required to
        appear at ``head_atoms[0].terms[p_head[k]]``.
        """

        if not self.is_referential:
            raise ConstraintError(f"{self!r} is not a referential constraint")
        body_atom = self.body[0]
        head_atom = self.head_atoms[0]
        body_positions: List[int] = []
        head_positions: List[int] = []
        body_vars = self.body_variables()
        for j, term in enumerate(head_atom.terms):
            if is_variable(term) and term in body_vars:
                occurrences = body_atom.positions_of(term)
                if not occurrences:
                    raise ConstraintError(
                        f"variable {term} of the consequent does not occur in the antecedent"
                    )
                body_positions.append(occurrences[0])
                head_positions.append(j)
        return tuple(body_positions), tuple(head_positions)

    def existential_positions(self) -> Tuple[int, ...]:
        """For a RIC, the consequent positions holding existential variables."""

        if not self.is_referential:
            raise ConstraintError(f"{self!r} is not a referential constraint")
        head_atom = self.head_atoms[0]
        exist = self.existential_variables()
        return tuple(
            j for j, term in enumerate(head_atom.terms) if is_variable(term) and term in exist
        )

    # ------------------------------------------------------------------ misc
    def with_name(self, name: str) -> "IntegrityConstraint":
        """Return a copy of the constraint carrying *name* (for reporting)."""

        return IntegrityConstraint(self.body, self.head_atoms, self.head_comparisons, name)

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body)
        head_parts = [repr(a) for a in self.head_atoms] + [
            repr(c) for c in self.head_comparisons
        ]
        head = " ∨ ".join(head_parts) if head_parts else "false"
        exist = self.existential_variables()
        prefix = ""
        if exist:
            prefix = "∃" + " ".join(sorted(v.name for v in exist)) + " "
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{body} → {prefix}{head}"


@dataclass(frozen=True)
class NotNullConstraint:
    """A NOT-NULL constraint ``∀x̄ (P(x̄) ∧ IsNull(x_i) → false)`` (Definition 5)."""

    predicate: str
    position: int
    arity: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ConstraintError("NOT NULL position must be non-negative (0-based)")
        if self.arity is not None and self.position >= self.arity:
            raise ConstraintError(
                f"NOT NULL position {self.position} out of range for arity {self.arity}"
            )

    def predicates(self) -> FrozenSet[str]:
        """The (single) predicate constrained."""

        return frozenset({self.predicate})

    def constants(self) -> FrozenSet[Constant]:
        """NNCs mention no constants other than the implicit ``null``."""

        return frozenset()

    def attribute_name(self, schema: DatabaseSchema) -> str:
        """Resolve the constrained attribute name against *schema*."""

        return schema.relation(self.predicate).attribute(self.position)

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}NOT NULL {self.predicate}[{self.position + 1}]"


#: Anything accepted wherever "a constraint" is expected.
AnyConstraint = Union[IntegrityConstraint, NotNullConstraint]


class ConstraintSet:
    """An ordered collection of ICs and NNCs with bulk queries.

    The class groups the helpers the rest of the library needs repeatedly:
    splitting into UICs / RICs / general ICs / NNCs, collecting constants,
    checking the paper's *non-conflicting* assumption (no NNC on an
    attribute that is existentially quantified in some IC), and computing
    RIC-acyclicity via :mod:`repro.constraints.dependency_graph`.
    """

    def __init__(self, constraints: Iterable[AnyConstraint] = ()):  # noqa: D401
        self._constraints: List[AnyConstraint] = list(constraints)

    # ------------------------------------------------------------------ container
    def add(self, constraint: AnyConstraint) -> None:
        """Append a constraint."""

        self._constraints.append(constraint)

    def extend(self, constraints: Iterable[AnyConstraint]) -> None:
        """Append several constraints."""

        self._constraints.extend(constraints)

    def __iter__(self) -> Iterator[AnyConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __getitem__(self, index: int) -> AnyConstraint:
        return self._constraints[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._constraints == other._constraints

    def __repr__(self) -> str:
        return "ConstraintSet([" + ", ".join(repr(c) for c in self._constraints) + "])"

    # ------------------------------------------------------------------ views
    @property
    def integrity_constraints(self) -> List[IntegrityConstraint]:
        """The constraints of form (1) (everything except NNCs)."""

        return [c for c in self._constraints if isinstance(c, IntegrityConstraint)]

    @property
    def not_null_constraints(self) -> List[NotNullConstraint]:
        """The NOT-NULL constraints."""

        return [c for c in self._constraints if isinstance(c, NotNullConstraint)]

    @property
    def universal_constraints(self) -> List[IntegrityConstraint]:
        """The UICs (the paper's ``IC_U``)."""

        return [c for c in self.integrity_constraints if c.is_universal]

    @property
    def referential_constraints(self) -> List[IntegrityConstraint]:
        """The RICs."""

        return [c for c in self.integrity_constraints if c.is_referential]

    @property
    def general_constraints(self) -> List[IntegrityConstraint]:
        """ICs of form (1) that are neither UICs nor RICs (mixed existential forms)."""

        return [
            c
            for c in self.integrity_constraints
            if not c.is_universal and not c.is_referential
        ]

    def predicates(self) -> FrozenSet[str]:
        """All database predicates mentioned by some constraint."""

        preds: Set[str] = set()
        for constraint in self._constraints:
            preds |= constraint.predicates()
        return frozenset(preds)

    def constants(self) -> FrozenSet[Constant]:
        """``const(IC)``: constants appearing in the constraints."""

        consts: Set[Constant] = set()
        for constraint in self._constraints:
            consts |= constraint.constants()
        return frozenset(consts)

    # ------------------------------------------------------------------ analyses
    def not_null_positions(self) -> Dict[str, FrozenSet[int]]:
        """Map predicate → positions protected by a NOT-NULL constraint."""

        result: Dict[str, Set[int]] = {}
        for nnc in self.not_null_constraints:
            result.setdefault(nnc.predicate, set()).add(nnc.position)
        return {pred: frozenset(positions) for pred, positions in result.items()}

    def existential_attribute_positions(self) -> Dict[str, FrozenSet[int]]:
        """Map predicate → consequent positions holding existential variables."""

        result: Dict[str, Set[int]] = {}
        for ic in self.integrity_constraints:
            exist = ic.existential_variables()
            if not exist:
                continue
            for atom in ic.head_atoms:
                for j, term in enumerate(atom.terms):
                    if is_variable(term) and term in exist:
                        result.setdefault(atom.predicate, set()).add(j)
        return {pred: frozenset(positions) for pred, positions in result.items()}

    def is_non_conflicting(self) -> bool:
        """Check the paper's non-conflicting assumption (Section 4).

        No NOT-NULL constraint may protect an attribute that is
        existentially quantified in some IC of form (1); otherwise the
        null-based repairs of Definition 7 are not guaranteed to exist
        (Example 20).
        """

        existential = self.existential_attribute_positions()
        for nnc in self.not_null_constraints:
            if nnc.position in existential.get(nnc.predicate, frozenset()):
                return False
        return True

    def conflicting_not_nulls(self) -> List[NotNullConstraint]:
        """The NNCs that violate the non-conflicting assumption (may be empty)."""

        existential = self.existential_attribute_positions()
        return [
            nnc
            for nnc in self.not_null_constraints
            if nnc.position in existential.get(nnc.predicate, frozenset())
        ]

    def is_ric_acyclic(self) -> bool:
        """RIC-acyclicity per Definition 1 (delegates to the graph module)."""

        from repro.constraints.dependency_graph import is_ric_acyclic

        return is_ric_acyclic(self)

    def named(self) -> Dict[str, AnyConstraint]:
        """Map constraint name → constraint (unnamed constraints get ``ic<i>``)."""

        result: Dict[str, AnyConstraint] = {}
        for index, constraint in enumerate(self._constraints):
            name = getattr(constraint, "name", None) or f"ic{index + 1}"
            result[name] = constraint
        return result
