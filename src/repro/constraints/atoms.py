"""Atoms: database atoms, built-in comparisons, and ``IsNull``.

The paper's constraint language (Section 2) uses database atoms
``P(x̄)`` with ``P ∈ R``, built-in comparison atoms from ``B``
(``=, ≠, <, ≤, >, ≥`` and the propositional ``false``) and, for NOT-NULL
constraints (Definition 5), the special predicate ``IsNull(·)`` which is
true exactly of the ``null`` constant.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.relational.domain import Constant, format_constant, is_null
from repro.constraints.terms import (
    Term,
    Variable,
    is_variable,
    substitute_terms,
    variables_in,
)


#: Comparison operators recognised in built-in atoms.
COMPARISON_OPS: Dict[str, Callable[[Constant, Constant], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Negation of each comparison operator (used to build ``ϕ̄`` in Definition 9).
NEGATED_OPS: Dict[str, str] = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


class BuiltinEvaluationError(ValueError):
    """Raised when a built-in comparison is applied to incomparable values."""


@dataclass(frozen=True)
class Atom:
    """A database atom ``P(t_1, …, t_n)`` over variables and constants."""

    predicate: str
    terms: Tuple[Term, ...]

    def __init__(self, predicate: str, terms: Sequence[Term]):
        if not predicate:
            raise ValueError("atom predicate must be a non-empty string")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        """Number of terms."""

        return len(self.terms)

    def variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the atom."""

        return variables_in(self.terms)

    def constants(self) -> FrozenSet[Constant]:
        """Constants occurring in the atom."""

        return frozenset(t for t in self.terms if not is_variable(t))

    def is_ground(self) -> bool:
        """True iff no variables occur."""

        return not self.variables()

    def positions_of(self, term: Term) -> Tuple[int, ...]:
        """0-based positions at which *term* occurs (the paper's ``pos_R(ψ, t)``)."""

        return tuple(i for i, t in enumerate(self.terms) if t == term)

    def substitute(self, assignment: Mapping[Variable, Constant]) -> "Atom":
        """Apply a variable assignment."""

        return Atom(self.predicate, substitute_terms(self.terms, assignment))

    def project(self, positions: Sequence[int]) -> "Atom":
        """Restriction of the atom to *positions*, keeping the predicate name.

        This is the syntactic counterpart of the paper's ``P^{A(ψ)}``.
        """

        return Atom(self.predicate, tuple(self.terms[i] for i in positions))

    def bound_positions(
        self,
        assignment: Mapping[Variable, Constant],
        positions: Optional[Sequence[int]] = None,
    ) -> Dict[int, Constant]:
        """Positions whose value is determined by *assignment* or a constant.

        The shared basis of every index-backed join: the returned
        ``position → value`` map is what
        :meth:`repro.relational.instance.DatabaseInstance.tuples_matching`
        probes the hash indexes with.  *positions* restricts the scan to a
        subset (the witness checks only look at the kept positions).
        """

        indices = range(self.arity) if positions is None else positions
        bound: Dict[int, Constant] = {}
        for position in indices:
            term = self.terms[position]
            if is_variable(term):
                if term in assignment:
                    bound[position] = assignment[term]
            else:
                bound[position] = term
        return bound

    def __repr__(self) -> str:
        inner = ", ".join(
            t.name if is_variable(t) else format_constant(t) for t in self.terms
        )
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison atom ``t1 op t2``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(
                f"unknown comparison operator {self.op!r}; valid: {sorted(COMPARISON_OPS)}"
            )

    def variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the comparison."""

        return variables_in((self.left, self.right))

    def constants(self) -> FrozenSet[Constant]:
        """Constants occurring in the comparison."""

        return frozenset(t for t in (self.left, self.right) if not is_variable(t))

    def negated(self) -> "Comparison":
        """The complementary comparison (``x < y`` ↦ ``x >= y``)."""

        return Comparison(NEGATED_OPS[self.op], self.left, self.right)

    def substitute(self, assignment: Mapping[Variable, Constant]) -> "Comparison":
        """Apply a variable assignment."""

        left, right = substitute_terms((self.left, self.right), assignment)
        return Comparison(self.op, left, right)

    def evaluate(
        self,
        assignment: Optional[Mapping[Variable, Constant]] = None,
        null_is_unknown: bool = False,
    ) -> bool:
        """Evaluate the (ground, after *assignment*) comparison.

        With ``null_is_unknown=True`` any comparison involving ``null``
        evaluates to ``False`` ("unknown" collapses to not-satisfied),
        which is the SQL behaviour used when mimicking commercial DBMSs.
        Otherwise ``null`` is treated as an ordinary constant: it is equal
        to itself and order comparisons against non-null values raise
        :class:`BuiltinEvaluationError` unless the operator is (in)equality.
        """

        ground = self.substitute(assignment or {})
        if ground.variables():
            raise BuiltinEvaluationError(
                f"comparison {ground!r} is not ground after substitution"
            )
        left, right = ground.left, ground.right
        if null_is_unknown and (is_null(left) or is_null(right)):
            return False
        if is_null(left) or is_null(right):
            if ground.op == "=":
                return is_null(left) and is_null(right)
            if ground.op == "!=":
                return not (is_null(left) and is_null(right))
            # Order comparisons against null have no classical meaning; the
            # null-aware semantics guards them with IsNull checks, so if we
            # get here the caller asked for something undefined.
            raise BuiltinEvaluationError(
                f"order comparison {ground!r} involves null; "
                "use null_is_unknown=True for SQL behaviour"
            )
        try:
            return COMPARISON_OPS[ground.op](left, right)
        except TypeError as exc:
            raise BuiltinEvaluationError(
                f"cannot compare {left!r} and {right!r} with {ground.op!r}"
            ) from exc

    def __repr__(self) -> str:
        def fmt(term: Term) -> str:
            return term.name if is_variable(term) else format_constant(term)

        return f"{fmt(self.left)} {self.op} {fmt(self.right)}"


@dataclass(frozen=True)
class IsNullAtom:
    """The special predicate ``IsNull(t)``, true iff ``t`` is ``null``."""

    term: Term

    def variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the atom (zero or one)."""

        return variables_in((self.term,))

    def substitute(self, assignment: Mapping[Variable, Constant]) -> "IsNullAtom":
        """Apply a variable assignment."""

        (term,) = substitute_terms((self.term,), assignment)
        return IsNullAtom(term)

    def evaluate(self, assignment: Optional[Mapping[Variable, Constant]] = None) -> bool:
        """Evaluate the ground atom after *assignment*."""

        ground = self.substitute(assignment or {})
        if is_variable(ground.term):
            raise BuiltinEvaluationError(f"IsNull({ground.term}) is not ground")
        return is_null(ground.term)

    def __repr__(self) -> str:
        term = self.term.name if is_variable(self.term) else format_constant(self.term)
        return f"IsNull({term})"
