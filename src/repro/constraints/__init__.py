"""Integrity-constraint language of the paper (Section 2).

Exposes the term/atom layer, the constraint classes (generic constraints of
form (1), universal constraints, referential constraints and NOT-NULL
constraints), convenience factories for the constraint shapes found in
database practice (keys, functional dependencies, foreign keys, inclusion
dependencies, denial and check constraints), a small textual parser, and
the dependency-graph machinery of Definition 1 (RIC-acyclicity).
"""

from repro.constraints.terms import Variable, is_variable, variables_in
from repro.constraints.atoms import Atom, Comparison, IsNullAtom, NEGATED_OPS
from repro.constraints.ic import (
    ConstraintError,
    ConstraintSet,
    IntegrityConstraint,
    NotNullConstraint,
)
from repro.constraints.factories import (
    check_constraint,
    denial_constraint,
    foreign_key,
    full_inclusion_dependency,
    functional_dependency,
    inclusion_dependency,
    not_null,
    primary_key,
    referential_constraint,
    universal_constraint,
)
from repro.constraints.parser import ParseError, parse_constraint, parse_constraints, parse_query
from repro.constraints.dependency_graph import (
    contracted_dependency_graph,
    dependency_graph,
    is_ric_acyclic,
)

__all__ = [
    "Variable",
    "is_variable",
    "variables_in",
    "Atom",
    "Comparison",
    "IsNullAtom",
    "NEGATED_OPS",
    "ConstraintError",
    "IntegrityConstraint",
    "NotNullConstraint",
    "ConstraintSet",
    "universal_constraint",
    "referential_constraint",
    "denial_constraint",
    "check_constraint",
    "functional_dependency",
    "primary_key",
    "foreign_key",
    "inclusion_dependency",
    "full_inclusion_dependency",
    "not_null",
    "ParseError",
    "parse_constraint",
    "parse_constraints",
    "parse_query",
    "dependency_graph",
    "contracted_dependency_graph",
    "is_ric_acyclic",
]
