"""Terms: variables and constants.

A term is either a :class:`Variable` or a plain Python constant (a member
of the database domain ``U``, possibly :data:`repro.relational.domain.NULL`).
Keeping constants as plain values keeps the evaluator fast and the
construction of constraints and queries pleasantly literal::

    Atom("Course", (Variable("x"), Variable("y"), "W04"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Mapping, Tuple, Union

from repro.relational.domain import Constant


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("variable name must be a non-empty string")

    def __repr__(self) -> str:
        return self.name


#: A term: either a variable or a domain constant.
Term = Union[Variable, Constant]


def is_variable(term: Any) -> bool:
    """True iff *term* is a :class:`Variable`."""

    return isinstance(term, Variable)


def variables_in(terms: Iterable[Term]) -> FrozenSet[Variable]:
    """The set of variables occurring in *terms*."""

    return frozenset(t for t in terms if isinstance(t, Variable))


def substitute_term(term: Term, assignment: Mapping[Variable, Constant]) -> Term:
    """Apply *assignment* to a single term (constants pass through)."""

    if isinstance(term, Variable):
        return assignment.get(term, term)
    return term


def substitute_terms(
    terms: Tuple[Term, ...], assignment: Mapping[Variable, Constant]
) -> Tuple[Term, ...]:
    """Apply *assignment* position-wise to a tuple of terms."""

    return tuple(substitute_term(t, assignment) for t in terms)


def fresh_variable(base: str, taken: Iterable[Variable]) -> Variable:
    """A variable named after *base* that does not clash with *taken*."""

    names = {v.name for v in taken}
    if base not in names:
        return Variable(base)
    index = 1
    while f"{base}_{index}" in names:
        index += 1
    return Variable(f"{base}_{index}")
