#!/usr/bin/env python3
"""AST lint enforcing the repository's cross-cutting invariants.

The architectural rules that keep the codebase honest are not expressible
in off-the-shelf linters, so this stdlib-only script walks the AST of
every Python file and enforces them as CI-gated errors:

========  ====================================================================
Rule      Invariant
========  ====================================================================
INV001    clock discipline: no ``time.perf_counter`` / ``time.process_time``
          outside ``src/repro/obs/clock.py`` — all timing goes through the
          swappable clock so tests can use the deterministic ``FakeClock``
INV002    pool ownership: no ``ProcessPoolExecutor`` / ``multiprocessing.Pool``
          outside ``src/repro/core/parallel.py`` — one owner for worker
          lifecycle, warm reuse and fault-tolerant respawn
INV003    no broad exception handlers (bare ``except`` / ``except Exception``
          / ``except BaseException``) in the hot evaluation paths — they
          swallow the typed budget/cancellation errors the resilience layer
          depends on
INV004    kernel-free reference paths: the naive/interpreted modules that
          cross-validate the compiled kernel must never import
          ``repro.compile`` — otherwise the bit-identical property suites
          would be circular
INV005    no ``print()`` under ``src/repro`` outside the CLI front ends —
          library output goes through tracing/metrics
INV006    codegen-free interpreters: the reference modules *and* the plan
          step interpreter (``repro.compile.plans`` / ``matchers``) must
          never import ``repro.compile.codegen`` — the interpreter is the
          oracle the generated executors are cross-validated against, so
          the dependency must only ever point codegen → interpreter
========  ====================================================================

A line may opt out with the pragma comment ``lint: allow(INVxxx)`` and a
reason.  Usage::

    python tools/lint_invariants.py src tests
    python tools/lint_invariants.py --list-rules
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

RULES: Dict[str, str] = {
    "INV001": "time.perf_counter/process_time outside src/repro/obs/clock.py",
    "INV002": "ProcessPoolExecutor/multiprocessing.Pool outside src/repro/core/parallel.py",
    "INV003": "broad exception handler in a hot evaluation path",
    "INV004": "reference (kernel-free) module imports repro.compile",
    "INV005": "print() in library code under src/repro",
    "INV006": "codegen-free module imports repro.compile.codegen",
}

CLOCK_OWNER = "src/repro/obs/clock.py"
POOL_OWNER = "src/repro/core/parallel.py"
#: Modules/packages whose exception handling must stay narrow: the
#: compiled kernel, logic evaluation, the relational layer and the
#: repair search all propagate typed budget/cancellation errors.
HOT_PATHS = (
    "src/repro/compile/",
    "src/repro/logic/",
    "src/repro/relational/",
    "src/repro/core/satisfaction.py",
    "src/repro/core/repairs.py",
)
#: The deliberately kernel-free naive/interpreted reference paths that the
#: bit-identical property suites cross-validate the compiled kernel against.
REFERENCE_MODULES = frozenset(
    {
        "src/repro/logic/evaluation.py",
        "src/repro/core/classic.py",
        "src/repro/core/semantics.py",
        "src/repro/core/hcf.py",
        "src/repro/core/transform.py",
        "src/repro/core/projection.py",
        "src/repro/core/relevant.py",
        "src/repro/asp/stable.py",
        "src/repro/asp/shift.py",
        "src/repro/asp/syntax.py",
    }
)
#: Modules that must never import the generated-executor path: every
#: kernel-free reference module, plus the plan step interpreter itself —
#: ``codegen.matcher`` falls back to (and is cross-validated against)
#: ``iter_plan_matches``, so an interpreter → codegen import would make
#: that oracle circular.
CODEGEN_FREE_MODULES = REFERENCE_MODULES | frozenset(
    {
        "src/repro/compile/plans.py",
        "src/repro/compile/matchers.py",
        "src/repro/relational/columnar.py",
    }
)
#: CLI front ends whose job is to print.
PRINT_ALLOWED = frozenset(
    {
        "src/repro/lint.py",
        "src/repro/explore/cli.py",
        "src/repro/compile/__main__.py",
    }
)

TIMING_NAMES = frozenset({"perf_counter", "process_time"})
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class Violation:
    """One invariant violation at a specific location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _is_time_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in TIMING_NAMES
        and isinstance(node.value, ast.Name)
        and node.value.id == "time"
    )


def _broad_handler_name(handler: ast.ExceptHandler) -> Optional[str]:
    """The broad exception name a handler catches, or ``None`` if narrow."""

    if handler.type is None:
        return "bare except"
    candidates: List[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in candidates:
        if isinstance(expr, ast.Name) and expr.id in BROAD_EXCEPTIONS:
            return expr.id
    return None


def _resolve_import_from(rel_path: str, node: ast.ImportFrom) -> Optional[str]:
    """The absolute dotted module an ``ImportFrom`` targets, or ``None``.

    Relative imports are resolved against the importing file's package so
    ``from . import codegen`` inside ``src/repro/compile/plans.py`` is seen
    as ``repro.compile`` (and its ``codegen`` alias as
    ``repro.compile.codegen``).  Files outside ``src/`` cannot anchor a
    relative import, so those return ``None``.
    """

    if node.level == 0:
        return node.module
    parts = rel_path.split("/")
    if parts[0] != "src" or not parts[-1].endswith(".py"):
        return None
    package = parts[1:-1]  # the file's package, e.g. ["repro", "compile"]
    if node.level - 1 > len(package):
        return None
    anchor = package[: len(package) - (node.level - 1)]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor) if anchor else None


def check_source(rel_path: str, source: str) -> List[Violation]:
    """Every invariant violation in one file (*rel_path* is repo-relative, posix)."""

    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as error:
        return [
            Violation("INV000", rel_path, error.lineno or 0, f"file does not parse: {error.msg}")
        ]
    lines = source.splitlines()

    def allowed(node: ast.AST, rule: str) -> bool:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(lines):
            return f"lint: allow({rule})" in lines[lineno - 1]
        return False

    violations: List[Violation] = []
    in_library = rel_path.startswith("src/repro/")
    in_hot_path = any(
        rel_path == prefix or rel_path.startswith(prefix) for prefix in HOT_PATHS
    )

    for node in ast.walk(tree):
        # INV001 — clock discipline
        if rel_path != CLOCK_OWNER:
            if _is_time_attribute(node) and not allowed(node, "INV001"):
                assert isinstance(node, ast.Attribute)
                violations.append(
                    Violation(
                        "INV001",
                        rel_path,
                        node.lineno,
                        f"time.{node.attr} used directly; route timing through "
                        "repro.obs.clock (now()/cpu_now()) so tests can fake it",
                    )
                )
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and any(alias.name in TIMING_NAMES for alias in node.names)
                and not allowed(node, "INV001")
            ):
                violations.append(
                    Violation(
                        "INV001",
                        rel_path,
                        node.lineno,
                        "importing perf_counter/process_time from time; use "
                        "repro.obs.clock instead",
                    )
                )

        # INV002 — pool ownership
        if rel_path != POOL_OWNER and not allowed(node, "INV002"):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "concurrent.futures"
                and any(alias.name == "ProcessPoolExecutor" for alias in node.names)
            ) or (isinstance(node, ast.Attribute) and node.attr == "ProcessPoolExecutor"):
                violations.append(
                    Violation(
                        "INV002",
                        rel_path,
                        node.lineno,
                        "ProcessPoolExecutor outside repro.core.parallel; worker "
                        "pools have one owner (warm reuse, fault-tolerant respawn)",
                    )
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "Pool"
                and isinstance(node.value, ast.Name)
                and node.value.id == "multiprocessing"
            ):
                violations.append(
                    Violation(
                        "INV002",
                        rel_path,
                        node.lineno,
                        "multiprocessing.Pool outside repro.core.parallel",
                    )
                )

        # INV003 — broad except in hot paths
        if in_hot_path and isinstance(node, ast.ExceptHandler):
            broad = _broad_handler_name(node)
            if broad is not None and not allowed(node, "INV003"):
                violations.append(
                    Violation(
                        "INV003",
                        rel_path,
                        node.lineno,
                        f"{broad} in a hot evaluation path swallows the typed "
                        "budget/cancellation errors; catch specific exceptions",
                    )
                )

        # INV004 — kernel-free reference modules
        if rel_path in REFERENCE_MODULES and not allowed(node, "INV004"):
            imported: List[str] = []
            if isinstance(node, ast.Import):
                imported = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                imported = [node.module]
            if any(name == "repro.compile" or name.startswith("repro.compile.") for name in imported):
                violations.append(
                    Violation(
                        "INV004",
                        rel_path,
                        node.lineno,
                        "reference module imports repro.compile; the naive and "
                        "interpreted paths must stay kernel-free so the "
                        "bit-identical cross-validation is never circular",
                    )
                )

        # INV006 — codegen-free interpreters
        if rel_path in CODEGEN_FREE_MODULES and not allowed(node, "INV006"):
            imported = []
            if isinstance(node, ast.Import):
                imported = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_from(rel_path, node)
                if base is not None:
                    imported = [base] + [f"{base}.{alias.name}" for alias in node.names]
            if any(
                name == "repro.compile.codegen"
                or name.startswith("repro.compile.codegen.")
                for name in imported
            ):
                violations.append(
                    Violation(
                        "INV006",
                        rel_path,
                        node.lineno,
                        "codegen-free module imports repro.compile.codegen; "
                        "the interpreter is the oracle the generated "
                        "executors are validated against — the dependency "
                        "must only point codegen → interpreter",
                    )
                )

        # INV005 — no print() in library code
        if (
            in_library
            and rel_path not in PRINT_ALLOWED
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not allowed(node, "INV005")
        ):
            violations.append(
                Violation(
                    "INV005",
                    rel_path,
                    node.lineno,
                    "print() in library code; use repro.obs tracing/metrics "
                    "(or add the module to the CLI allowlist)",
                )
            )

    return violations


def check_paths(paths: Sequence[str], root: Path) -> List[Violation]:
    """Check every ``*.py`` file under *paths* (files or directories)."""

    violations: List[Violation] = []
    for raw in paths:
        target = (root / raw) if not Path(raw).is_absolute() else Path(raw)
        files: Iterable[Path]
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file in files:
            try:
                rel = file.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            violations.extend(check_source(rel, file.read_text(encoding="utf-8")))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="repository invariant lint")
    parser.add_argument("paths", nargs="*", default=["src", "tests"], help="files or directories")
    parser.add_argument("--list-rules", action="store_true", help="print the rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0

    root = Path(__file__).resolve().parent.parent
    violations = check_paths(args.paths or ["src", "tests"], root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariant lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
